"""repro: reproduction of "Mapping Peering Interconnections to a Facility".

Giotsas, Smaragdakis, Huffaker, Luckie, claffy — ACM CoNEXT 2015.

The package implements the paper's Constrained Facility Search (CFS)
inference algorithm (``repro.core``) together with every substrate it
needs, generated synthetically: a ground-truth Internet topology
(``repro.topology``), traceroute measurement platforms
(``repro.measurement``), noisy public datasets (``repro.datasets``),
alias resolution (``repro.alias``), baselines (``repro.baselines``),
validation oracles (``repro.validation``) and the experiment harnesses
reproducing every table and figure (``repro.experiments``).

Quickstart (the stable facade, see :mod:`repro.api`)::

    from repro import run_pipeline
    result = run_pipeline(seed=7, scale="small")
    print(result.cfs_result.resolved_fraction())
"""

from . import api
from .api import build_environment, build_topology, run_pipeline
from .core.cfs import CfsConfig, ConstrainedFacilitySearch
from .core.facility_db import FacilityDatabase
from .core.pipeline import Environment, PipelineConfig, PipelineResult
from .core.types import CfsResult, InferredType, InterfaceStatus, LinkInference
from .export import dumps_result, export_result, export_topology_summary
from .obs import Instrumentation, LoggingSink, MemorySink, MetricsSnapshot
from .topology.builder import TopologyConfig
from .validation.metrics import score_interfaces, validate_against_sources

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "api",
    "build_environment",
    "build_topology",
    "CfsConfig",
    "CfsResult",
    "ConstrainedFacilitySearch",
    "dumps_result",
    "Environment",
    "export_result",
    "export_topology_summary",
    "FacilityDatabase",
    "InferredType",
    "Instrumentation",
    "InterfaceStatus",
    "LinkInference",
    "LoggingSink",
    "MemorySink",
    "MetricsSnapshot",
    "PipelineConfig",
    "PipelineResult",
    "run_pipeline",
    "score_interfaces",
    "TopologyConfig",
    "validate_against_sources",
]
