"""The always-on map service: epoch ingest loop and snapshot lifecycle.

:class:`MapService` turns the batch pipeline into a long-lived daemon.
The initial campaign's probe plan — every sampling decision already
drawn — is partitioned into contiguous epochs that execute in plan
order, simulating a continuous traceroute feed.  After each epoch the
accumulated traces are folded into the incremental search state
(:class:`~repro.serve.ingest.StreamingCfs`), an interim
:class:`~repro.serve.snapshot.MapSnapshot` is built, durably published
through the checkpoint store (PR 5), and atomically swapped into the
read path (:class:`~repro.serve.query.QueryEngine`).  When the stream
is exhausted, a full CFS convergence pass — identical seeds and
substrates to the batch pipeline — produces the **final** snapshot,
whose fingerprint is byte-identical to a one-shot
:func:`repro.core.pipeline.run_pipeline` of the same config.

Snapshot lifecycle and versioning:

* each published snapshot is immutable and carries a content
  fingerprint (sha256 of its canonical map document, epoch metadata
  excluded);
* the durable copy lands in the checkpoint store as stage
  ``snapshot-epoch-<k>`` (or ``snapshot-final``), and the manifest's
  sha256 of that stage file is the snapshot's **watermark** — equal
  watermarks mean byte-identical durable payloads;
* the read path holds exactly one snapshot reference; a publish swaps
  it with a single assignment, so queries never observe a torn map.

Crash recovery: after every epoch the service checkpoints a ``stream``
stage (epoch count, fold boundaries, planned slice sizes, and the
campaign codec's trace + engine-accounting payload).  A restart with
``resume=True`` validates the recorded plan against its own, restores
the corpus and measurement substrate, replays the fold per recorded
epoch boundary — reproducing the ingest state exactly — and re-publishes
the last epoch's snapshot before continuing the stream.  Probe-
perturbing fault plans disable stream resume (their failure draws come
from sequential per-run RNG streams that a restored engine cannot
replay), as does a probe-budget cap (the restarted driver's budget
ledger would restart at zero); both degrade to a fresh stream with a
warning, never a crash.  Epoch-level fault perturbations need no new
machinery: probes execute through the same engine and platforms the
injector is wired into, so outages and timeouts simply land on
whichever epoch's probes were in flight.

Resilience: every epoch execution and every durable publish runs under
the :class:`~repro.serve.supervise.ServiceSupervisor` — bounded
retries, poisoned-epoch quarantine (the service keeps answering from
the last good snapshot), publish-time integrity re-verification with
rollback — and the service's :class:`~repro.serve.health.ServiceHealth`
state machine (``ok``/``degraded``/``stale``/``recovering``) is
exposed through the ``health`` query verb and
:meth:`ServiceHandle.health`.  Service-layer fault plans
(``epoch_fail``/``snapshot_corrupt``) disable the mid-stream
checkpoint and resume: quarantine makes arrival order diverge from
plan order, which the stream stage's boundary bookkeeping assumes.
Quarantined epochs are drained injection-free once the stream ends and
the final convergence pass folds the full corpus in plan order, so the
final fingerprint still matches the fault-free batch run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..checkpoint import (
    CheckpointStore,
    config_fingerprint,
    decode_campaign_stage,
    encode_campaign_stage,
)
from ..core.pipeline import (
    Environment,
    PipelineConfig,
    _open_store,
    build_environment,
)
from ..core.facility_db import FacilityDatabase
from ..inference.disruption import DisruptionDetector, DisruptionPolicy
from ..measurement.campaign import TraceCorpus
from ..measurement.traceroute import Traceroute
from ..obs import Instrumentation
from ..topology.churn import ChurnPlan, ChurnView, censor_trace, lagged_membership
from .health import HealthPolicy, ServiceHealth, snapshot_data_health
from .ingest import StreamingCfs, slice_epochs
from .query import QueryEngine
from .snapshot import MapSnapshot, build_snapshot, diff_snapshots
from .supervise import ServicePolicy, ServiceSupervisor

__all__ = ["MapService", "ServiceHandle"]

#: Checkpoint stage holding the mid-stream resume state.
STREAM_STAGE = "stream"


def _clean_int(value: Any) -> bool:
    """A genuine int — explicitly not a bool.

    A tampered stream stage carrying ``"epoch": true`` passes a naive
    ``isinstance(value, int)`` check (``bool`` subclasses ``int``) and
    then resumes from "epoch 1" that never ran; every count restored
    from a checkpoint goes through this instead.
    """
    return isinstance(value, int) and not isinstance(value, bool)


def _stream_shape_valid(epochs_done: Any, boundaries: Any) -> bool:
    """Whether a stream stage's epoch/boundary bookkeeping is coherent.

    Boundaries are cumulative corpus sizes per completed epoch, so they
    must be genuine non-negative ints, non-decreasing (an epoch may
    fold zero traces, never remove any), one per completed epoch.
    """
    return (
        _clean_int(epochs_done)
        and epochs_done >= 1
        and isinstance(boundaries, list)
        and len(boundaries) == epochs_done
        and all(_clean_int(b) and b >= 0 for b in boundaries)
        and all(
            boundaries[i] <= boundaries[i + 1]
            for i in range(len(boundaries) - 1)
        )
    )


@dataclass(slots=True)
class ServiceHandle:
    """Typed result of one service run (the ``repro.api`` return type).

    Holds the published history and the live query engine; ``final`` is
    ``None`` when the stream was paused mid-way (``stop_after_epoch``).
    """

    #: The service that produced this handle (query engine, environment
    #: and checkpoint store remain live on it).
    service: "MapService"
    #: Every snapshot published by this run, in publish order.
    snapshots: list[MapSnapshot] = field(default_factory=list)
    #: The converged final snapshot, or ``None`` if the stream paused.
    final: MapSnapshot | None = None
    #: Whether this run restored mid-stream state from a checkpoint.
    resumed: bool = False

    @property
    def environment(self) -> Environment:
        """The simulated-Internet substrate behind the service."""
        return self.service.environment

    def query(self, line: str) -> dict[str, Any]:
        """Answer one query line against the live snapshot."""
        return self.service.engine.execute(line)

    def health(self) -> dict[str, Any]:
        """The service's health document (state, staleness, incidents)."""
        return self.service.health.report(self.service.engine.current())


class MapService:
    """A long-lived map service over one pipeline configuration."""

    def __init__(
        self,
        config: PipelineConfig | None = None,
        *,
        instrumentation: Instrumentation | None = None,
        progress: Callable[[str], None] | None = None,
        policy: ServicePolicy | None = None,
        disruption_policy: DisruptionPolicy | None = None,
    ) -> None:
        self._obs = instrumentation or Instrumentation()
        #: Thresholds for the churned-stream disruption detector.
        self.disruption_policy = disruption_policy or DisruptionPolicy()
        #: The live detector; populated by churned runs, ``None`` before.
        self.detector: DisruptionDetector | None = None
        self._progress = progress
        self.environment = build_environment(config)
        self.config = self.environment.config
        if (
            instrumentation is not None
            and self.environment.fault_injector is not None
        ):
            self.environment.fault_injector.instrumentation = instrumentation
        #: Supervision knobs (retry budgets, retention, staleness).
        self.policy = policy or ServicePolicy()
        #: The health state machine behind the ``health`` query verb.
        self.health = ServiceHealth(
            instrumentation=self._obs,
            policy=HealthPolicy(stale_after=self.policy.stale_after),
        )
        #: The read path; live across the whole service lifetime.
        self.engine = QueryEngine(self._obs, health=self.health)
        #: Durable store (``None`` without ``config.checkpoint_dir``).
        self.store: CheckpointStore | None = _open_store(
            self.config, self.environment, instrumentation, progress
        )
        #: The resilience envelope around epoch ingest and publishes;
        #: replaced per :meth:`run_stream` call so quarantine state and
        #: the retention ring are per-run.
        self.supervisor = self._new_supervisor()

    def _new_supervisor(self) -> ServiceSupervisor:
        return ServiceSupervisor(
            self,
            policy=self.policy,
            health=self.health,
            instrumentation=self._obs,
            notify=self._notify,
        )

    # ------------------------------------------------------------------

    def _notify(self, message: str) -> None:
        if self._progress is not None:
            self._progress(message)

    def _stream_resumable(self) -> bool:
        """Whether mid-stream resume is sound under this config."""
        injector = self.environment.fault_injector
        if injector is not None and injector.plan.perturbs_probes:
            self._notify(
                "serve: probe-perturbing faults installed; "
                "stream resume disabled (fresh stream)"
            )
            return False
        if injector is not None and injector.plan.perturbs_serve:
            self._notify(
                "serve: service-layer faults installed; "
                "stream resume disabled (fresh stream)"
            )
            return False
        if self.config.campaign.resilience.max_probes is not None:
            self._notify(
                "serve: probe budget capped; stream resume disabled "
                "(fresh stream)"
            )
            return False
        return True

    def _try_resume(
        self,
        task_sizes: list[int],
        fold: StreamingCfs,
        corpus: TraceCorpus,
    ) -> tuple[int, MapSnapshot | None, list[int]]:
        """Restore mid-stream state from the ``stream`` checkpoint stage.

        Returns ``(epochs_done, last_snapshot, boundaries)`` —
        ``(0, None, [])`` when there is nothing (or nothing trustworthy)
        to restore.  The fold is replayed chunk by chunk along the
        recorded epoch boundaries, so the restored ingest state is
        identical to the state the interrupted run held after its last
        completed epoch.
        """
        nothing = (0, None, [])
        if self.store is None or not self.config.resume:
            return nothing
        payload = self.store.load_stage(STREAM_STAGE)
        if payload is None:
            return nothing
        if not self._stream_resumable():
            return nothing
        if not isinstance(payload, dict):
            self._notify(
                "serve: stream stage has an unknown layout; starting fresh"
            )
            return nothing
        recorded_sizes = payload.get("task_sizes")
        if recorded_sizes != task_sizes:
            self._notify(
                "serve: checkpointed stream was planned differently "
                "(epochs or config changed); starting fresh"
            )
            return nothing
        epochs_done = payload.get("epoch")
        boundaries = payload.get("boundaries")
        if not _stream_shape_valid(epochs_done, boundaries):
            self._notify(
                "serve: stream stage has an unknown layout; starting fresh"
            )
            return nothing
        try:
            restored = decode_campaign_stage(
                payload["campaign"],
                self.environment.engine,
                self.environment.platforms,
            )
        except (KeyError, TypeError, ValueError) as error:
            self._notify(
                f"serve: stream stage undecodable ({error}); starting fresh"
            )
            return nothing
        if len(restored) != boundaries[-1]:
            self._notify(
                "serve: stream stage boundaries disagree with its corpus; "
                "starting fresh"
            )
            return nothing
        corpus.extend(restored.traces)
        start = 0
        for boundary in boundaries:
            fold.fold(restored.traces[start:boundary])
            start = boundary
        snapshot = self._interim_snapshot(fold, epochs_done - 1)
        self._obs.count("ingest.resumes")
        self._obs.emit(
            "ingest.resume",
            epoch=epochs_done,
            traces=len(restored),
            fingerprint=snapshot.fingerprint,
        )
        self._notify(
            f"serve: resumed after epoch {epochs_done} "
            f"({len(restored)} traces restored)"
        )
        return epochs_done, snapshot, [int(b) for b in boundaries]

    def _checkpoint_stream(
        self,
        epochs_done: int,
        boundaries: list[int],
        task_sizes: list[int],
        corpus: TraceCorpus,
    ) -> None:
        if self.store is None:
            return
        self.store.write_stage(
            STREAM_STAGE,
            {
                "epoch": epochs_done,
                "boundaries": list(boundaries),
                "task_sizes": list(task_sizes),
                "campaign": encode_campaign_stage(
                    corpus,
                    self.environment.engine,
                    self.environment.platforms,
                ),
            },
        )

    def _interim_snapshot(self, fold: StreamingCfs, epoch: int) -> MapSnapshot:
        return build_snapshot(
            fold.interim_result(),
            epoch=epoch,
            final=False,
            seed=self.config.seed,
            config_fingerprint=config_fingerprint(self.config),
            traces_ingested=fold.traces_folded,
        )

    # ------------------------------------------------------------------

    def run_stream(
        self,
        epochs: int = 4,
        *,
        stop_after_epoch: int | None = None,
        churn: ChurnPlan | None = None,
    ) -> ServiceHandle:
        """Ingest the streamed campaign and publish snapshots.

        Executes the initial campaign's plan in ``epochs`` contiguous
        slices, publishing one interim snapshot per epoch, then runs
        the full convergence pass and publishes the final snapshot
        (fingerprint-identical to the batch pipeline's map).

        ``stop_after_epoch=k`` pauses the service after epoch ``k``'s
        snapshot is published (simulating a crash/shutdown mid-stream);
        the returned handle then has ``final=None`` and a later service
        with ``resume=True`` picks up from the checkpoint.

        ``churn`` switches the service into the **temporal** mode: the
        world moves under the stream according to the
        :class:`~repro.topology.churn.ChurnPlan`, each epoch re-plans
        and re-executes the full campaign against the churned reality,
        and the disruption detector watches the published snapshots.
        Passing ``churn=None`` (the default) runs the classic
        pre-sliced stream, bit-for-bit identical to before this mode
        existed — the two paths share no per-epoch state.
        """
        if churn is not None:
            return self._run_churned_stream(churn, epochs, stop_after_epoch)
        env = self.environment
        config = self.config
        obs = self._obs
        handle = ServiceHandle(service=self)
        names = config.platform_filter
        supervisor = self.supervisor = self._new_supervisor()
        injector = env.fault_injector
        # Quarantine makes arrival order diverge from plan order, which
        # the stream stage's boundary bookkeeping assumes — under
        # service-layer faults the mid-stream checkpoint is skipped
        # (resume is already disabled by ``_stream_resumable``).
        stream_checkpointing = not (
            injector is not None and injector.plan.perturbs_serve
        )

        driver = env.new_driver(0, instrumentation=obs)
        plan = driver.plan_initial_campaign(env.target_asns)
        slices = slice_epochs(plan, epochs)
        task_sizes = [len(s) for s in slices]
        fold = StreamingCfs(env, instrumentation=obs)
        corpus = TraceCorpus()  # filtered traces, arrival order
        executed_total = 0
        #: epoch -> that epoch's filtered traces; the final convergence
        #: input is assembled from this in *plan* order, so a drained
        #: quarantined epoch lands exactly where the batch run put it.
        per_epoch: dict[int, list[Traceroute]] = {}

        start_epoch, resumed_snapshot, boundaries = self._try_resume(
            task_sizes, fold, corpus
        )
        restored_total = len(corpus)  # traces restored, 0 on fresh streams
        if start_epoch:
            handle.resumed = True
            assert resumed_snapshot is not None
            supervisor.publish(
                resumed_snapshot, f"snapshot-epoch-{start_epoch - 1}"
            )
            handle.snapshots.append(resumed_snapshot)

        for epoch in range(start_epoch, len(slices)):
            obs.count("ingest.epochs")
            obs.emit(
                "ingest.epoch.begin", epoch=epoch, probes=len(slices[epoch])
            )
            executed = supervisor.ingest_epoch(driver, epoch, slices[epoch])
            if executed is None:
                # Quarantined: nothing folds, the last good snapshot
                # keeps serving; the epoch is drained after the stream.
                continue
            executed_total += len(executed)
            arrived: list[Traceroute] = (
                executed
                if names is None
                else [t for t in executed if t.platform in names]
            )
            per_epoch[epoch] = arrived
            corpus.extend(arrived)
            fold.fold(arrived)
            boundaries.append(len(corpus))
            snapshot = self._interim_snapshot(fold, epoch)
            published = supervisor.publish(snapshot, f"snapshot-epoch-{epoch}")
            if published:
                handle.snapshots.append(snapshot)
                if stream_checkpointing:
                    self._checkpoint_stream(
                        epoch + 1, boundaries, task_sizes, corpus
                    )
            obs.emit(
                "ingest.epoch.done",
                epoch=epoch,
                traces=len(arrived),
                total=len(corpus),
                fingerprint=snapshot.fingerprint,
                published=published,
            )
            if published:
                self._notify(
                    f"serve: epoch {epoch} published "
                    f"({len(arrived)} traces, {len(corpus)} total)"
                )
            if stop_after_epoch is not None and epoch >= stop_after_epoch:
                self._notify(f"serve: paused after epoch {epoch}")
                return handle

        # Drain quarantined epochs (injection-free) so the final
        # convergence pass sees the full corpus.
        for epoch in list(supervisor.quarantined):
            executed = supervisor.drain_epoch(driver, epoch, slices[epoch])
            executed_total += len(executed)
            per_epoch[epoch] = (
                executed
                if names is None
                else [t for t in executed if t.platform in names]
            )

        obs.emit(
            "ingest.stream.end",
            epochs=len(slices),
            traces=len(corpus),
            quarantined=len(supervisor.quarantined),
        )
        # Parity with the batch campaign's closing accounting.  Resumed
        # runs restored the corpus rather than re-probing, so their
        # executed counts cover only the replayed-forward epochs; the
        # restored trace count rides along so totals still reconcile.
        obs.count("campaign.initial_traces", executed_total)
        obs.emit(
            "campaign.initial",
            targets=len(env.target_asns),
            traces=executed_total,
            archives=True,
            restored=restored_total,
        )
        driver.budget.check()
        obs.emit("campaign.budget", **driver.budget.as_dict())

        # Full convergence over a copy: follow-ups must not pollute the
        # accumulated stream corpus (which the stream stage checkpointed).
        # Assembled in plan order — restored prefix, then each executed
        # or drained epoch — which equals arrival order whenever nothing
        # was quarantined.
        final_input = TraceCorpus()
        final_input.extend(corpus.traces[:restored_total])
        for epoch in sorted(per_epoch):
            final_input.extend(per_epoch[epoch])
        total_streamed = len(final_input)
        result = env.run_cfs(
            final_input,
            platform_filter=config.platform_filter,
            instrumentation=obs,
        )
        final_snapshot = build_snapshot(
            result,
            epoch=len(slices),
            final=True,
            seed=config.seed,
            config_fingerprint=config_fingerprint(config),
            traces_ingested=total_streamed,
        )
        final_published = supervisor.publish(final_snapshot, "snapshot-final")
        if final_published:
            handle.snapshots.append(final_snapshot)
        # The converged map is correct by construction even when its
        # durable publish rolled back (the read path then keeps serving
        # the last good epoch snapshot, staleness annotated).
        handle.final = final_snapshot
        if final_published:
            self._notify(
                f"serve: final snapshot published "
                f"(fingerprint {final_snapshot.fingerprint[:12]}…)"
            )
        return handle

    # ------------------------------------------------------------------
    # Temporal mode: the world churns under the stream
    # ------------------------------------------------------------------

    def _lagged_db(
        self,
        view: ChurnView,
        cache: dict[Any, FacilityDatabase],
    ) -> FacilityDatabase:
        """The facility database as PeeringDB *believes* it at ``view``.

        AS departures stay listed until their ``db_epoch`` passes and
        lagged arrivals appear early — the paper's stale-constraint
        reality.  Views with the same lag state share one copy (the
        index and every untouched table are shared with the base, so a
        lag change costs one membership-dict copy, nothing more).
        """
        base = self.environment.facility_db
        if not view.db_hidden and not view.db_added:
            return base
        key = view.db_key
        cached = cache.get(key)
        if cached is not None:
            return cached
        database = FacilityDatabase(
            as_facilities=lagged_membership(base.as_facilities, view),
            ixp_facilities=dict(base.ixp_facilities),
            ixp_members=dict(base.ixp_members),
            active_ixps=base.active_ixps,
            facility_metro=dict(base.facility_metro),
            campus=dict(base.campus),
        )
        database._ixp_lan_index = base._ixp_lan_index
        cache[key] = database
        return database

    def _run_churned_stream(
        self,
        churn: ChurnPlan,
        epochs: int,
        stop_after_epoch: int | None,
    ) -> ServiceHandle:
        """Epoch loop for the temporal mode.

        Differences from the classic stream, each deliberate:

        * **Per-epoch re-planning.**  Every epoch builds a fresh driver
          at the same seed offset and re-plans the full campaign — the
          probe panel is therefore stable across epochs (same targets,
          same sampling draws) while the *measurement substrate* keys
          per-trace noise by issue sequence, so repeated probes see
          fresh noise over the same paths.  Churn is then applied as a
          view over the executed traces: dark routers and downed links
          truncate exactly the hops the real world would have absorbed.
        * **Epoch-local folds.**  The cumulative fold can only gain
          links, so it structurally cannot show loss; the temporal mode
          folds each epoch into a fresh :class:`StreamingCfs` (against
          the lagged facility database) and publishes the epoch-local
          map — successive-snapshot diffing is the whole point, per
          arXiv:1911.04866.
        * **No convergence pass, no mid-stream checkpoint.**  A final
          batch-equivalent snapshot is meaningless when every epoch saw
          a different world (``handle.final`` stays ``None``), and the
          stream stage's boundary bookkeeping assumes one immutable
          plan, so checkpoint/resume is disabled here.
        * **Quarantined epochs are lost.**  Draining them later would
          replay a world that no longer exists; the detector simply
          does not observe those epochs (its streaks advance on
          observed epochs only).
        """
        if epochs < 1:
            raise ValueError(f"epochs must be at least 1, got {epochs}")
        if epochs > churn.epochs:
            raise ValueError(
                f"churn plan covers {churn.epochs} epochs, stream wants {epochs}"
            )
        env = self.environment
        config = self.config
        obs = self._obs
        handle = ServiceHandle(service=self)
        names = config.platform_filter
        supervisor = self.supervisor = self._new_supervisor()
        detector = DisruptionDetector(
            policy=self.disruption_policy, instrumentation=obs
        )
        self.detector = detector
        if self.config.resume:
            self._notify(
                "serve: churned streams cannot resume (the plan is "
                "re-drawn per epoch); running fresh"
            )

        db_cache: dict[Any, FacilityDatabase] = {}
        previous: MapSnapshot | None = None
        total_traces = 0
        for epoch in range(epochs):
            view = churn.view(epoch)
            for event in view.started:
                obs.count("churn.events")
                obs.emit(
                    "churn.event",
                    kind=event.kind,
                    epoch=event.epoch,
                    duration=event.duration,
                    facility_id=event.facility_id,
                    link_id=event.link_id,
                    asn=event.asn,
                    db_epoch=event.db_epoch,
                )
            obs.count("ingest.epochs")
            driver = env.new_driver(0, instrumentation=obs)
            plan = driver.plan_initial_campaign(env.target_asns)
            obs.emit(
                "ingest.replan",
                epoch=epoch,
                probes=len(plan),
                dark_routers=len(view.dark_routers),
                down_links=len(view.down_pairs),
            )
            obs.emit("ingest.epoch.begin", epoch=epoch, probes=len(plan))
            executed = supervisor.ingest_epoch(driver, epoch, plan)
            if executed is None:
                # Quarantined: this epoch's world was never observed.
                continue
            censored = [censor_trace(trace, view) for trace in executed]
            arrived: list[Traceroute] = (
                censored
                if names is None
                else [t for t in censored if t.platform in names]
            )
            total_traces += len(arrived)
            fold = StreamingCfs(
                env,
                instrumentation=obs,
                facility_db=self._lagged_db(view, db_cache),
            )
            fold.fold(arrived)
            snapshot = self._interim_snapshot(fold, epoch)
            published = supervisor.publish(snapshot, f"snapshot-epoch-{epoch}")
            obs.emit(
                "ingest.epoch.done",
                epoch=epoch,
                traces=len(arrived),
                total=total_traces,
                fingerprint=snapshot.fingerprint,
                published=published,
            )
            if published:
                handle.snapshots.append(snapshot)
                diff = (
                    diff_snapshots(previous, snapshot)
                    if previous is not None
                    else None
                )
                reports = detector.observe(
                    snapshot,
                    diff=diff,
                    data_health=snapshot_data_health(snapshot),
                )
                self.health.record_map_assessment(detector.status())
                for report in reports:
                    self._notify(
                        f"serve: disruption {report.kind} for facility "
                        f"{report.facility_id} at epoch {report.epoch} "
                        f"(score {report.score:.2f})"
                    )
                previous = snapshot
                self._notify(
                    f"serve: epoch {epoch} published ({len(arrived)} traces, "
                    f"{len(view.active)} active churn events)"
                )
            if stop_after_epoch is not None and epoch >= stop_after_epoch:
                self._notify(f"serve: paused after epoch {epoch}")
                return handle

        obs.emit(
            "ingest.stream.end",
            epochs=epochs,
            traces=total_traces,
            quarantined=len(supervisor.quarantined),
        )
        return handle
