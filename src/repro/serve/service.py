"""The always-on map service: epoch ingest loop and snapshot lifecycle.

:class:`MapService` turns the batch pipeline into a long-lived daemon.
The initial campaign's probe plan — every sampling decision already
drawn — is partitioned into contiguous epochs that execute in plan
order, simulating a continuous traceroute feed.  After each epoch the
accumulated traces are folded into the incremental search state
(:class:`~repro.serve.ingest.StreamingCfs`), an interim
:class:`~repro.serve.snapshot.MapSnapshot` is built, durably published
through the checkpoint store (PR 5), and atomically swapped into the
read path (:class:`~repro.serve.query.QueryEngine`).  When the stream
is exhausted, a full CFS convergence pass — identical seeds and
substrates to the batch pipeline — produces the **final** snapshot,
whose fingerprint is byte-identical to a one-shot
:func:`repro.core.pipeline.run_pipeline` of the same config.

Snapshot lifecycle and versioning:

* each published snapshot is immutable and carries a content
  fingerprint (sha256 of its canonical map document, epoch metadata
  excluded);
* the durable copy lands in the checkpoint store as stage
  ``snapshot-epoch-<k>`` (or ``snapshot-final``), and the manifest's
  sha256 of that stage file is the snapshot's **watermark** — equal
  watermarks mean byte-identical durable payloads;
* the read path holds exactly one snapshot reference; a publish swaps
  it with a single assignment, so queries never observe a torn map.

Crash recovery: after every epoch the service checkpoints a ``stream``
stage (epoch count, fold boundaries, planned slice sizes, and the
campaign codec's trace + engine-accounting payload).  A restart with
``resume=True`` validates the recorded plan against its own, restores
the corpus and measurement substrate, replays the fold per recorded
epoch boundary — reproducing the ingest state exactly — and re-publishes
the last epoch's snapshot before continuing the stream.  Probe-
perturbing fault plans disable stream resume (their failure draws come
from sequential per-run RNG streams that a restored engine cannot
replay), as does a probe-budget cap (the restarted driver's budget
ledger would restart at zero); both degrade to a fresh stream with a
warning, never a crash.  Epoch-level fault perturbations need no new
machinery: probes execute through the same engine and platforms the
injector is wired into, so outages and timeouts simply land on
whichever epoch's probes were in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..checkpoint import (
    CheckpointStore,
    config_fingerprint,
    decode_campaign_stage,
    encode_campaign_stage,
)
from ..core.pipeline import (
    Environment,
    PipelineConfig,
    _open_store,
    build_environment,
)
from ..measurement.campaign import TraceCorpus
from ..measurement.traceroute import Traceroute
from ..obs import Instrumentation
from .ingest import StreamingCfs, slice_epochs
from .query import QueryEngine
from .snapshot import MapSnapshot, build_snapshot, snapshot_payload

__all__ = ["MapService", "ServiceHandle"]

#: Checkpoint stage holding the mid-stream resume state.
STREAM_STAGE = "stream"


@dataclass(slots=True)
class ServiceHandle:
    """Typed result of one service run (the ``repro.api`` return type).

    Holds the published history and the live query engine; ``final`` is
    ``None`` when the stream was paused mid-way (``stop_after_epoch``).
    """

    #: The service that produced this handle (query engine, environment
    #: and checkpoint store remain live on it).
    service: "MapService"
    #: Every snapshot published by this run, in publish order.
    snapshots: list[MapSnapshot] = field(default_factory=list)
    #: The converged final snapshot, or ``None`` if the stream paused.
    final: MapSnapshot | None = None
    #: Whether this run restored mid-stream state from a checkpoint.
    resumed: bool = False

    @property
    def environment(self) -> Environment:
        """The simulated-Internet substrate behind the service."""
        return self.service.environment

    def query(self, line: str) -> dict[str, Any]:
        """Answer one query line against the live snapshot."""
        return self.service.engine.execute(line)


class MapService:
    """A long-lived map service over one pipeline configuration."""

    def __init__(
        self,
        config: PipelineConfig | None = None,
        *,
        instrumentation: Instrumentation | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        self._obs = instrumentation or Instrumentation()
        self._progress = progress
        self.environment = build_environment(config)
        self.config = self.environment.config
        if (
            instrumentation is not None
            and self.environment.fault_injector is not None
        ):
            self.environment.fault_injector.instrumentation = instrumentation
        #: The read path; live across the whole service lifetime.
        self.engine = QueryEngine(self._obs)
        #: Durable store (``None`` without ``config.checkpoint_dir``).
        self.store: CheckpointStore | None = _open_store(
            self.config, self.environment, instrumentation, progress
        )

    # ------------------------------------------------------------------

    def _notify(self, message: str) -> None:
        if self._progress is not None:
            self._progress(message)

    def _publish(self, snapshot: MapSnapshot, stage: str) -> None:
        """Durably publish one snapshot, then swap it into the read path."""
        watermark = None
        if self.store is not None:
            self.store.write_stage(stage, snapshot_payload(snapshot))
            watermark = self.store.stage_digest(stage)
        self._obs.count("serve.snapshots_published")
        self._obs.emit(
            "serve.snapshot.publish",
            epoch=snapshot.epoch,
            final=snapshot.final,
            fingerprint=snapshot.fingerprint,
            watermark=watermark,
        )
        self.engine.swap(snapshot)

    def _stream_resumable(self) -> bool:
        """Whether mid-stream resume is sound under this config."""
        injector = self.environment.fault_injector
        if injector is not None and injector.plan.perturbs_probes:
            self._notify(
                "serve: probe-perturbing faults installed; "
                "stream resume disabled (fresh stream)"
            )
            return False
        if self.config.campaign.resilience.max_probes is not None:
            self._notify(
                "serve: probe budget capped; stream resume disabled "
                "(fresh stream)"
            )
            return False
        return True

    def _try_resume(
        self,
        task_sizes: list[int],
        fold: StreamingCfs,
        corpus: TraceCorpus,
    ) -> tuple[int, MapSnapshot | None, list[int]]:
        """Restore mid-stream state from the ``stream`` checkpoint stage.

        Returns ``(epochs_done, last_snapshot, boundaries)`` —
        ``(0, None, [])`` when there is nothing (or nothing trustworthy)
        to restore.  The fold is replayed chunk by chunk along the
        recorded epoch boundaries, so the restored ingest state is
        identical to the state the interrupted run held after its last
        completed epoch.
        """
        nothing = (0, None, [])
        if self.store is None or not self.config.resume:
            return nothing
        payload = self.store.load_stage(STREAM_STAGE)
        if payload is None:
            return nothing
        if not self._stream_resumable():
            return nothing
        recorded_sizes = payload.get("task_sizes")
        if recorded_sizes != task_sizes:
            self._notify(
                "serve: checkpointed stream was planned differently "
                "(epochs or config changed); starting fresh"
            )
            return nothing
        epochs_done = payload.get("epoch")
        boundaries = payload.get("boundaries")
        if (
            not isinstance(epochs_done, int)
            or not isinstance(boundaries, list)
            or len(boundaries) != epochs_done
            or epochs_done < 1
        ):
            self._notify(
                "serve: stream stage has an unknown layout; starting fresh"
            )
            return nothing
        try:
            restored = decode_campaign_stage(
                payload["campaign"],
                self.environment.engine,
                self.environment.platforms,
            )
        except (KeyError, TypeError, ValueError) as error:
            self._notify(
                f"serve: stream stage undecodable ({error}); starting fresh"
            )
            return nothing
        if len(restored) != boundaries[-1]:
            self._notify(
                "serve: stream stage boundaries disagree with its corpus; "
                "starting fresh"
            )
            return nothing
        corpus.extend(restored.traces)
        start = 0
        for boundary in boundaries:
            fold.fold(restored.traces[start:boundary])
            start = boundary
        snapshot = self._interim_snapshot(fold, epochs_done - 1)
        self._obs.count("ingest.resumes")
        self._obs.emit(
            "ingest.resume",
            epoch=epochs_done,
            traces=len(restored),
            fingerprint=snapshot.fingerprint,
        )
        self._notify(
            f"serve: resumed after epoch {epochs_done} "
            f"({len(restored)} traces restored)"
        )
        return epochs_done, snapshot, [int(b) for b in boundaries]

    def _checkpoint_stream(
        self,
        epochs_done: int,
        boundaries: list[int],
        task_sizes: list[int],
        corpus: TraceCorpus,
    ) -> None:
        if self.store is None:
            return
        self.store.write_stage(
            STREAM_STAGE,
            {
                "epoch": epochs_done,
                "boundaries": list(boundaries),
                "task_sizes": list(task_sizes),
                "campaign": encode_campaign_stage(
                    corpus,
                    self.environment.engine,
                    self.environment.platforms,
                ),
            },
        )

    def _interim_snapshot(self, fold: StreamingCfs, epoch: int) -> MapSnapshot:
        return build_snapshot(
            fold.interim_result(),
            epoch=epoch,
            final=False,
            seed=self.config.seed,
            config_fingerprint=config_fingerprint(self.config),
            traces_ingested=fold.traces_folded,
        )

    # ------------------------------------------------------------------

    def run_stream(
        self,
        epochs: int = 4,
        *,
        stop_after_epoch: int | None = None,
    ) -> ServiceHandle:
        """Ingest the streamed campaign and publish snapshots.

        Executes the initial campaign's plan in ``epochs`` contiguous
        slices, publishing one interim snapshot per epoch, then runs
        the full convergence pass and publishes the final snapshot
        (fingerprint-identical to the batch pipeline's map).

        ``stop_after_epoch=k`` pauses the service after epoch ``k``'s
        snapshot is published (simulating a crash/shutdown mid-stream);
        the returned handle then has ``final=None`` and a later service
        with ``resume=True`` picks up from the checkpoint.
        """
        env = self.environment
        config = self.config
        obs = self._obs
        handle = ServiceHandle(service=self)
        names = config.platform_filter

        driver = env.new_driver(0, instrumentation=obs)
        plan = driver.plan_initial_campaign(env.target_asns)
        slices = slice_epochs(plan, epochs)
        task_sizes = [len(s) for s in slices]
        fold = StreamingCfs(env, instrumentation=obs)
        corpus = TraceCorpus()  # filtered traces, stream order
        executed_total = 0

        start_epoch, resumed_snapshot, boundaries = self._try_resume(
            task_sizes, fold, corpus
        )
        if start_epoch:
            handle.resumed = True
            assert resumed_snapshot is not None
            self._publish(
                resumed_snapshot, f"snapshot-epoch-{start_epoch - 1}"
            )
            handle.snapshots.append(resumed_snapshot)

        for epoch in range(start_epoch, len(slices)):
            obs.count("ingest.epochs")
            obs.emit(
                "ingest.epoch.begin", epoch=epoch, probes=len(slices[epoch])
            )
            results = driver.execute_plan(slices[epoch])
            executed = [t for t in results if t is not None]
            executed_total += len(executed)
            arrived: list[Traceroute] = (
                executed
                if names is None
                else [t for t in executed if t.platform in names]
            )
            corpus.extend(arrived)
            fold.fold(arrived)
            boundaries.append(len(corpus))
            snapshot = self._interim_snapshot(fold, epoch)
            self._publish(snapshot, f"snapshot-epoch-{epoch}")
            handle.snapshots.append(snapshot)
            self._checkpoint_stream(
                epoch + 1, boundaries, task_sizes, corpus
            )
            obs.emit(
                "ingest.epoch.done",
                epoch=epoch,
                traces=len(arrived),
                total=len(corpus),
                fingerprint=snapshot.fingerprint,
            )
            self._notify(
                f"serve: epoch {epoch} published "
                f"({len(arrived)} traces, {len(corpus)} total)"
            )
            if stop_after_epoch is not None and epoch >= stop_after_epoch:
                self._notify(f"serve: paused after epoch {epoch}")
                return handle

        obs.emit(
            "ingest.stream.end",
            epochs=len(slices),
            traces=len(corpus),
        )
        # Parity with the batch campaign's closing accounting (resumed
        # runs restored the corpus rather than re-probing, so their
        # executed counts cover only the replayed-forward epochs).
        obs.count("campaign.initial_traces", executed_total)
        obs.emit(
            "campaign.initial",
            targets=len(env.target_asns),
            traces=executed_total,
            archives=True,
        )
        driver.budget.check()
        obs.emit("campaign.budget", **driver.budget.as_dict())

        # Full convergence over a copy: follow-ups must not pollute the
        # accumulated stream corpus (which the stream stage checkpointed).
        final_input = TraceCorpus()
        final_input.extend(corpus.traces)
        result = env.run_cfs(
            final_input,
            platform_filter=config.platform_filter,
            instrumentation=obs,
        )
        final_snapshot = build_snapshot(
            result,
            epoch=len(slices),
            final=True,
            seed=config.seed,
            config_fingerprint=config_fingerprint(config),
            traces_ingested=len(corpus),
        )
        self._publish(final_snapshot, "snapshot-final")
        handle.snapshots.append(final_snapshot)
        handle.final = final_snapshot
        self._notify(
            f"serve: final snapshot published "
            f"(fingerprint {final_snapshot.fingerprint[:12]}…)"
        )
        return handle
