"""The read path: line-oriented queries over the live snapshot.

One :class:`QueryEngine` fronts the service.  Writers publish whole
:class:`~repro.serve.snapshot.MapSnapshot` objects through
:meth:`QueryEngine.swap` — a single reference assignment, which CPython
performs atomically — and every request captures that reference exactly
once, so a query runs start to finish against one immutable snapshot
even while the ingest loop swaps new versions underneath it.  There is
no partially-updated state to observe: the torn-map test hammers
queries through concurrent swaps and checks each answer is internally
consistent with exactly one published version.

The query protocol is one request per line, one JSON object per
response (every response names the ``epoch`` and ``fingerprint`` it was
answered from)::

    iface 10.1.2.3          interface -> facility inference
    link 64500 64501        every inferred link between the AS pair
    tenants 17              ASNs with an inferred presence at facility 17
    info                    snapshot version, fingerprint, map sizes
    health                  service state, staleness, incident counters
    health 17               facility 17's disruption-alarm status
    help                    list the commands

Unknown commands and malformed arguments answer ``{"error": ...}`` —
the daemon never dies on a bad query line.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from ..obs import Instrumentation
from ..topology.addressing import MAX_IPV4, int_to_ip, ip_to_int
from .snapshot import LinkEntry, MapSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from .health import ServiceHealth

__all__ = ["QueryEngine", "query_snapshot"]

_HELP = {
    "iface <address>": "facility inference for one interface "
    "(dotted quad or integer)",
    "link <asn> <asn>": "inferred links between an AS pair "
    "(order-insensitive)",
    "tenants <facility>": "ASNs with an inferred presence at a facility",
    "info": "snapshot epoch, fingerprint, and map sizes",
    "health [facility]": "service health state, staleness, incident "
    "counters, and change-vs-fault assessment; with a facility id, that "
    "facility's disruption-alarm status (live service only)",
    "help": "this command list",
}


def _parse_address(token: str) -> int:
    """One interface address, dotted quad or integer, bounds-checked.

    ``isdigit`` alone admits any digit string — ``iface
    99999999999999`` used to flow into ``int_to_ip`` and blow up out
    of range — so integer forms are re-bounded to ``[0, 2^32)`` here
    and rejections surface as the caller's clean ``{"error": ...}``.
    """
    if token.isdigit():
        value = int(token)
        if value > MAX_IPV4:
            raise ValueError(
                f"address {token} is outside the IPv4 range [0, 2^32)"
            )
        return value
    return ip_to_int(token)


def _link_document(link: LinkEntry) -> dict[str, Any]:
    return {
        "kind": link.kind,
        "type": link.inferred_type,
        "near_address": int_to_ip(link.near_address),
        "near_asn": link.near_asn,
        "near_facility": link.near_facility,
        "far_asn": link.far_asn,
        "far_facility": link.far_facility,
        "ixp": link.ixp_id,
        "confidence": link.confidence,
    }


def query_snapshot(snapshot: MapSnapshot, line: str) -> dict[str, Any]:
    """Answer one query line against one immutable snapshot.

    Pure read: the snapshot is never touched beyond index lookups, and
    every response carries the snapshot's epoch and fingerprint so a
    caller can tell which published version answered it.
    """
    version = {"epoch": snapshot.epoch, "fingerprint": snapshot.fingerprint}
    tokens = line.strip().split()
    if not tokens:
        return {"error": "empty query; try 'help'", **version}
    command, args = tokens[0].lower(), tokens[1:]

    if command == "help":
        return {"query": "help", "commands": dict(_HELP), **version}

    if command == "info":
        return {
            "query": "info",
            "final": snapshot.final,
            "seed": snapshot.seed,
            "traces_ingested": snapshot.traces_ingested,
            "interfaces": snapshot.stats["interfaces"],
            "resolved": snapshot.stats["resolved"],
            "links": snapshot.stats["links"],
            "facilities": snapshot.stats["facilities"],
            **version,
        }

    if command == "iface":
        if len(args) != 1:
            return {"error": "usage: iface <address>", **version}
        try:
            address = _parse_address(args[0])
        except ValueError:
            return {"error": f"bad address {args[0]!r}", **version}
        entry = snapshot.interfaces.get(address)
        if entry is None:
            return {
                "query": "iface",
                "address": int_to_ip(address),
                "found": False,
                **version,
            }
        return {
            "query": "iface",
            "address": int_to_ip(entry.address),
            "found": True,
            "owner_asn": entry.owner_asn,
            "status": entry.status,
            "type": entry.inferred_type,
            "facility": entry.facility,
            "confidence": entry.confidence,
            "data_health": entry.data_health,
            "candidates": list(entry.candidates),
            **version,
        }

    if command == "link":
        if len(args) != 2:
            return {"error": "usage: link <asn> <asn>", **version}
        try:
            near, far = int(args[0]), int(args[1])
        except ValueError:
            return {"error": f"bad AS pair {args[0]!r} {args[1]!r}", **version}
        pair = (min(near, far), max(near, far))
        links = snapshot.links_by_aspair.get(pair, ())
        return {
            "query": "link",
            "as_pair": list(pair),
            "found": bool(links),
            "links": [_link_document(link) for link in links],
            **version,
        }

    if command == "health":
        # The snapshot alone has no service state; the live engine
        # intercepts this verb before it gets here.
        return {
            "error": "health requires a live service "
            "(query through the service's engine)",
            **version,
        }

    if command == "tenants":
        if len(args) != 1:
            return {"error": "usage: tenants <facility-id>", **version}
        try:
            facility = int(args[0])
        except ValueError:
            return {"error": "usage: tenants <facility-id>", **version}
        # Facility ids share the address bound: a tampered or fat-
        # fingered id like -5 or 10^14 is a clean miss-shaped error,
        # not an unbounded dict probe.
        if not 0 <= facility <= MAX_IPV4:
            return {
                "error": f"facility id {args[0]!r} is outside [0, 2^32)",
                **version,
            }
        tenants = snapshot.facility_tenants.get(facility, ())
        return {
            "query": "tenants",
            "facility": facility,
            "found": bool(tenants),
            "tenants": list(tenants),
            **version,
        }

    return {
        "error": f"unknown command {command!r}; try 'help'",
        **version,
    }


class QueryEngine:
    """Serves queries against the most recently published snapshot.

    The snapshot reference is the only mutable state, and only
    :meth:`swap` writes it.  Queries read it once per request.
    """

    def __init__(
        self,
        instrumentation: Instrumentation | None = None,
        health: "ServiceHealth | None" = None,
    ) -> None:
        self._obs = instrumentation or Instrumentation()
        self._snapshot: MapSnapshot | None = None
        #: The owning service's health machine; when present the
        #: ``health`` verb is answered here (it needs service state a
        #: bare snapshot doesn't carry), even before the first publish.
        self._health = health

    def current(self) -> MapSnapshot | None:
        """The live snapshot (``None`` before the first publication)."""
        return self._snapshot

    def swap(self, snapshot: MapSnapshot) -> None:
        """Atomically switch the read path to ``snapshot``.

        One reference assignment — in-flight queries keep the version
        they captured; new queries see the new one.  The old snapshot
        is unreferenced here, never mutated (copy-on-write).
        """
        self._snapshot = snapshot
        self._obs.count("serve.swaps")
        self._obs.emit(
            "serve.snapshot.swap",
            epoch=snapshot.epoch,
            final=snapshot.final,
            fingerprint=snapshot.fingerprint,
        )

    def _facility_health(
        self, token: str, snapshot: MapSnapshot | None
    ) -> dict[str, Any]:
        """Per-facility disruption status for ``health <facility-id>``.

        The id is bounds-checked exactly like the ``tenants`` argument —
        same guard, same error shape — before it touches any state.
        """
        assert self._health is not None
        try:
            facility = int(token)
        except ValueError:
            return {"error": "usage: health [facility-id]"}
        if not 0 <= facility <= MAX_IPV4:
            return {"error": f"facility id {token!r} is outside [0, 2^32)"}
        alarmed = self._health.alarmed_facilities()
        document: dict[str, Any] = {
            "query": "health",
            "facility": facility,
            "alarmed": facility in alarmed,
            "assessment": self._health.map_assessment,
            "state": self._health.state,
        }
        if snapshot is not None:
            document["tenants"] = len(
                snapshot.facility_tenants.get(facility, ())
            )
            document["epoch"] = snapshot.epoch
            document["fingerprint"] = snapshot.fingerprint
        return document

    def execute(self, line: str) -> dict[str, Any]:
        """Answer one query line against the snapshot captured now."""
        snapshot = self._snapshot  # the one capture; never re-read below
        self._obs.count("serve.queries")
        tokens = line.strip().split()
        if tokens and tokens[0].lower() == "health" and self._health is not None:
            if len(tokens) == 1:
                response: dict[str, Any] = self._health.report(snapshot)
            elif len(tokens) == 2:
                response = self._facility_health(tokens[1], snapshot)
            else:
                response = {"error": "usage: health [facility-id]"}
            self._obs.emit(
                "serve.query",
                kind=response.get("query", "error"),
                found=response.get("found"),
                epoch=snapshot.epoch if snapshot is not None else None,
            )
            return response
        if snapshot is None:
            return {"error": "no snapshot published yet"}
        response = query_snapshot(snapshot, line)
        self._obs.emit(
            "serve.query",
            kind=response.get("query", "error"),
            found=response.get("found"),
            epoch=snapshot.epoch,
        )
        return response

    def execute_line(self, line: str) -> str:
        """One-line JSON rendering of :meth:`execute` (the wire format)."""
        return json.dumps(self.execute(line), sort_keys=True)
