"""The outage-detection scoring harness: churn rate × fault intensity.

Every cell of the sweep runs a fresh churned map-service stream
(:meth:`MapService.run_stream` with a :class:`ChurnPlan`), then scores
the disruption detector's alarm log against the plan's event log — the
seeded ground truth:

* **recall** — the fraction of facility power-loss events answered by
  an alarm at that facility within the event's window (plus the
  detector's own confirmation latency);
* **precision** — the fraction of alarms explained by *any* disruption
  event at that facility (power loss or an AS departure; both darken
  routers there, so an alarm on either is a correct localisation);
* **latency** — epochs from event onset to the confirming alarm,
  averaged over detected events;
* **false alarms** — alarms matching no event; the zero-churn column
  must keep this at exactly zero whatever the fault intensity, or the
  detector is crying wolf at measurement noise.

The fault axis deliberately uses **measurement-class faults only**
(probe loss, truncation, VP outages, rate limits, dataset decay —
worker and serve-layer rates zeroed): epoch-level quarantine faults
test the *supervisor*, and in the temporal mode a quarantined epoch is
simply never observed, which starves the sweep of data without saying
anything about detection quality.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.pipeline import PipelineConfig
from ..faults.plan import FaultPlan
from ..inference.disruption import DisruptionPolicy
from ..obs import Instrumentation
from ..topology.churn import ChurnConfig, ChurnPlan, plan_churn
from .service import MapService

__all__ = [
    "DEFAULT_EPOCHS",
    "DEFAULT_SEED",
    "OutagePoint",
    "OutageReport",
    "measurement_faults",
    "run_outage",
    "score_detection",
]

#: The reference gate profile (bench_outage, scripts/check.sh).  The
#: seed is chosen so the moderate churn profile at small scale draws
#: several scorable facility power losses inside the horizon — seeds
#: whose outage stream happens to stay quiet for ten epochs would make
#: the recall gate vacuous.
DEFAULT_SEED = 2
DEFAULT_EPOCHS = 10


def measurement_faults(intensity: float) -> FaultPlan | None:
    """The moderate fault plan scaled to ``intensity``, measurement
    classes only (worker/serve rates zeroed — see module docstring)."""
    if intensity <= 0:
        return None
    return FaultPlan.moderate().scaled(intensity).replace(
        worker_crash=0.0,
        worker_hang=0.0,
        epoch_fail=0.0,
        snapshot_corrupt=0.0,
    )


@dataclass(frozen=True, slots=True)
class OutagePoint:
    """Detection scores for one (churn intensity, fault intensity) cell."""

    churn_intensity: float
    fault_intensity: float
    epochs: int
    events: int
    power_losses: int
    detected: int
    alarms: int
    matched_alarms: int
    false_alarms: int
    precision: float | None
    recall: float | None
    mean_latency: float | None
    clears: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "churn_intensity": self.churn_intensity,
            "fault_intensity": self.fault_intensity,
            "epochs": self.epochs,
            "events": self.events,
            "power_losses": self.power_losses,
            "detected": self.detected,
            "alarms": self.alarms,
            "matched_alarms": self.matched_alarms,
            "false_alarms": self.false_alarms,
            "precision": self.precision,
            "recall": self.recall,
            "mean_latency": self.mean_latency,
            "clears": self.clears,
        }


@dataclass(slots=True)
class OutageReport:
    """The full sweep: one :class:`OutagePoint` per grid cell."""

    seed: int
    scale: str
    epochs: int
    points: list[OutagePoint] = field(default_factory=list)

    def point(
        self, churn_intensity: float, fault_intensity: float
    ) -> OutagePoint | None:
        for point in self.points:
            if (
                point.churn_intensity == churn_intensity
                and point.fault_intensity == fault_intensity
            ):
                return point
        return None

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "scale": self.scale,
            "epochs": self.epochs,
            "points": [point.as_dict() for point in self.points],
        }

    def format(self) -> str:
        lines = [
            "outage-detection sweep "
            f"(seed {self.seed}, scale {self.scale}, {self.epochs} epochs)",
            f"{'churn':>6} {'fault':>6} {'events':>7} {'losses':>7} "
            f"{'detect':>7} {'alarms':>7} {'false':>6} "
            f"{'prec':>6} {'recall':>7} {'latency':>8}",
        ]
        for point in self.points:
            prec = "-" if point.precision is None else f"{point.precision:.2f}"
            rec = "-" if point.recall is None else f"{point.recall:.2f}"
            lat = (
                "-"
                if point.mean_latency is None
                else f"{point.mean_latency:.1f}"
            )
            lines.append(
                f"{point.churn_intensity:>6.2f} {point.fault_intensity:>6.2f} "
                f"{point.events:>7} {point.power_losses:>7} "
                f"{point.detected:>7} {point.alarms:>7} "
                f"{point.false_alarms:>6} {prec:>6} {rec:>7} {lat:>8}"
            )
        return "\n".join(lines)


def score_detection(
    plan: ChurnPlan,
    reports: list[Any],
    *,
    grace: int,
) -> dict[str, Any]:
    """Score an alarm log against a churn plan's event log.

    ``grace`` extends every event's match window past its end — the
    detector legitimately needs ``confirm_epochs`` observations to
    debounce, so an alarm landing just after a short event is a
    detection, not a coincidence.
    """
    alarms = [r for r in reports if r.kind == "alarm"]
    clears = [r for r in reports if r.kind == "clear"]
    disruptions = plan.disruption_events()
    losses = plan.power_loss_events()

    def window_hit(event: Any, report: Any) -> bool:
        return (
            event.facility_id == report.facility_id
            and event.epoch <= report.epoch < event.epoch + event.duration + grace
        )

    detected = 0
    latencies: list[int] = []
    for event in losses:
        hits = [a for a in alarms if window_hit(event, a)]
        if hits:
            detected += 1
            latencies.append(min(a.epoch for a in hits) - event.epoch)
    matched = sum(
        1 for a in alarms if any(window_hit(e, a) for e in disruptions)
    )
    false_alarms = len(alarms) - matched
    precision = matched / len(alarms) if alarms else None
    recall = detected / len(losses) if losses else None
    mean_latency = sum(latencies) / len(latencies) if latencies else None
    return {
        "events": len(plan.events),
        "power_losses": len(losses),
        "detected": detected,
        "alarms": len(alarms),
        "matched_alarms": matched,
        "false_alarms": false_alarms,
        "precision": precision,
        "recall": recall,
        "mean_latency": mean_latency,
        "clears": len(clears),
    }


def run_outage(
    *,
    seed: int = 0,
    scale: str = "small",
    epochs: int = 10,
    churn_intensities: tuple[float, ...] = (0.0, 1.0),
    fault_intensities: tuple[float, ...] = (0.0, 1.0),
    disruption_policy: DisruptionPolicy | None = None,
    progress: Callable[[str], None] | None = None,
) -> OutageReport:
    """Sweep churn rate × fault intensity and score detection per cell.

    Every cell builds a fresh service (fresh environment, fresh
    detector) so cells are independent and any cell is reproducible in
    isolation from ``(seed, scale, epochs, intensities)`` alone.
    """
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    policy = disruption_policy or DisruptionPolicy()
    report = OutageReport(seed=seed, scale=scale, epochs=epochs)
    for churn_intensity in churn_intensities:
        for fault_intensity in fault_intensities:
            if progress is not None:
                progress(
                    f"outage: cell churn={churn_intensity} "
                    f"fault={fault_intensity}"
                )
            config = PipelineConfig.for_scale(scale, seed=seed)
            plan_faults = measurement_faults(fault_intensity)
            if plan_faults is not None:
                # Same installation the chaos harness uses: faults plus
                # degraded-mode CFS, so interface entries carry the
                # data_health annotations the detector's fault-pressure
                # margin reads.
                config = dataclasses.replace(
                    config,
                    faults=plan_faults,
                    cfs=config.cfs.replace(degraded_mode=True),
                )
            service = MapService(
                config,
                instrumentation=Instrumentation(),
                disruption_policy=policy,
                progress=progress,
            )
            churn_config = ChurnConfig.moderate().scaled(churn_intensity)
            plan = plan_churn(
                service.environment.topology, epochs, churn_config, seed
            )
            service.run_stream(epochs, churn=plan)
            assert service.detector is not None
            scores = score_detection(
                plan,
                service.detector.reports,
                grace=policy.confirm_epochs + 1,
            )
            report.points.append(
                OutagePoint(
                    churn_intensity=churn_intensity,
                    fault_intensity=fault_intensity,
                    epochs=epochs,
                    **scores,
                )
            )
    return report
