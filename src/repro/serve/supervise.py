"""Service-layer supervision: epoch retries, quarantine, publish rollback.

PR 5's executor supervisor keeps one *parallel map* alive across worker
crashes; :class:`ServiceSupervisor` does the same one layer up, for the
map service's epoch loop.  Its contract mirrors the worker pool's:

* **bounded retries** — a failed ingest epoch is resubmitted up to
  :attr:`ServicePolicy.max_epoch_retries` times.  Injected epoch faults
  (:meth:`repro.faults.FaultInjector.check_epoch`) fire *before* any
  probe executes and re-roll per attempt, so a retry is both safe and
  deterministic;
* **poisoned-epoch quarantine** — an epoch that exhausts its budget is
  skipped and recorded; the service keeps answering queries from the
  last good snapshot with the staleness annotated in its health
  document.  When the stream ends, quarantined epochs are **drained**
  (executed once more, with no fault injection — the same
  never-inject-on-the-fallback-path rule as the executor's
  quarantine-to-serial), so the final convergence pass folds the full
  corpus and the final fingerprint matches the fault-free batch run;
* **publish-time integrity re-verification** — every durable snapshot
  write is read back and re-verified against the snapshot's *content*
  fingerprint (the store's file checksum can't help: a torn write
  lands its bytes atomically, so the manifest hashes the torn bytes).
  A failed verification rewrites the stage; after
  :attr:`ServicePolicy.max_publish_retries` the stage is dropped and
  the service **rolls back** — the read path keeps the last good
  snapshot, and the durable directory's best stage is again the last
  good one;
* **bounded retention** — published epoch stages rotate through a ring
  of :attr:`ServicePolicy.snapshot_retention` entries, so a long
  stream cannot grow the checkpoint directory without bound.

Exceptions never escape the supervisor to the caller; every failure
degrades to a recorded incident on the :class:`ServiceHealth` machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..measurement.traceroute import Traceroute
from ..obs import Instrumentation
from .health import ServiceHealth
from .snapshot import MapSnapshot, snapshot_from_payload, snapshot_payload

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..checkpoint import CheckpointStore
    from ..measurement.campaign import CampaignDriver
    from .service import MapService

__all__ = ["ServicePolicy", "ServiceSupervisor"]

#: Stage-name prefix of interim (per-epoch) snapshot publications.
EPOCH_STAGE_PREFIX = "snapshot-epoch-"


@dataclass(frozen=True, slots=True)
class ServicePolicy:
    """Validated supervision knobs for one :class:`MapService`."""

    #: Resubmissions of a failed ingest epoch before quarantine
    #: (attempts = retries + 1).
    max_epoch_retries: int = 2
    #: Rewrites of a corrupt snapshot publication before rollback.
    max_publish_retries: int = 2
    #: Per-epoch snapshot stages kept durable (older ones rotate out;
    #: the final stage never rotates).
    snapshot_retention: int = 4
    #: Epochs-behind threshold at which health reports ``stale``.
    stale_after: int = 2

    def __post_init__(self) -> None:
        for name in ("max_epoch_retries", "max_publish_retries"):
            if getattr(self, name) < 0:
                raise ValueError(
                    f"{name}={getattr(self, name)!r} must not be negative"
                )
        if self.snapshot_retention < 1:
            raise ValueError(
                f"snapshot_retention={self.snapshot_retention!r} "
                "must be at least 1"
            )
        if self.stale_after < 1:
            raise ValueError(
                f"stale_after={self.stale_after!r} must be at least 1"
            )


class ServiceSupervisor:
    """Wraps the epoch loop so no single failure kills the service."""

    def __init__(
        self,
        service: "MapService",
        policy: ServicePolicy,
        health: ServiceHealth,
        instrumentation: Instrumentation | None = None,
        notify: Callable[[str], None] | None = None,
    ) -> None:
        self.service = service
        self.policy = policy
        self.health = health
        self._obs = instrumentation or Instrumentation()
        self._notify_cb = notify
        #: Epochs skipped after exhausting the retry budget, stream order.
        self.quarantined: list[int] = []
        #: Lifetime incident totals (independent of instrumentation).
        self.retries = 0
        self.publish_retries = 0
        self.rollbacks = 0
        self.drains = 0
        self._retained: list[str] = []

    def _notify(self, message: str) -> None:
        if self._notify_cb is not None:
            self._notify_cb(message)

    # ------------------------------------------------------------------
    # Epoch ingest: retry, then quarantine
    # ------------------------------------------------------------------

    def _check_epoch_fault(self, epoch: int, attempt: int) -> None:
        injector = self.service.environment.fault_injector
        if injector is not None:
            injector.check_epoch(epoch, attempt)

    def ingest_epoch(
        self,
        driver: "CampaignDriver",
        epoch: int,
        tasks: list,
    ) -> list[Traceroute] | None:
        """Execute one epoch's probes under the retry/quarantine envelope.

        Returns the executed traces, or ``None`` when the epoch was
        quarantined — the caller skips the fold and keeps serving the
        last good snapshot.  No exception escapes.
        """
        attempts = self.policy.max_epoch_retries + 1
        for attempt in range(attempts):
            try:
                self._check_epoch_fault(epoch, attempt)
                results = driver.execute_plan(tasks)
            except Exception as error:
                self.health.record_failure(
                    reason=f"epoch {epoch} attempt {attempt} failed: {error}"
                )
                if attempt + 1 < attempts:
                    self.retries += 1
                    self._obs.count("serve.epoch.retry")
                    self._obs.emit(
                        "serve.epoch.retry",
                        epoch=epoch,
                        attempt=attempt,
                        reason=str(error),
                    )
                    self._notify(
                        f"serve: epoch {epoch} ingest failed ({error}); "
                        "retrying"
                    )
                continue
            return [t for t in results if t is not None]
        self.quarantined.append(epoch)
        self.health.record_quarantine(epoch)
        self._obs.count("serve.epoch.quarantine")
        self._obs.emit(
            "serve.epoch.quarantine", epoch=epoch, attempts=attempts
        )
        self._notify(
            f"serve: epoch {epoch} quarantined after {attempts} attempts; "
            "serving last good snapshot"
        )
        return None

    def drain_epoch(
        self,
        driver: "CampaignDriver",
        epoch: int,
        tasks: list,
    ) -> list[Traceroute]:
        """Execute one quarantined epoch after the stream ended.

        Drains never consult the epoch-fault injector (the same rule as
        the executor's quarantine-to-serial: the fallback path must not
        be re-poisoned), so with an ``epoch_fail``-only plan a drain
        always succeeds and the final corpus equals the batch corpus.
        A genuine execution error here is terminal for the epoch's
        traces but still doesn't escape.
        """
        try:
            results = driver.execute_plan(tasks)
        except Exception as error:
            self._notify(
                f"serve: drain of quarantined epoch {epoch} failed "
                f"({error}); its traces are lost"
            )
            return []
        self.drains += 1
        self._obs.count("serve.epoch.drained")
        self._notify(f"serve: quarantined epoch {epoch} drained")
        return [t for t in results if t is not None]

    # ------------------------------------------------------------------
    # Publish: verify, retry, roll back
    # ------------------------------------------------------------------

    def _announce(self, snapshot: MapSnapshot, watermark: str | None) -> None:
        self._obs.count("serve.snapshots_published")
        self._obs.emit(
            "serve.snapshot.publish",
            epoch=snapshot.epoch,
            final=snapshot.final,
            fingerprint=snapshot.fingerprint,
            watermark=watermark,
        )
        self.service.engine.swap(snapshot)

    @staticmethod
    def _stage_verifies(
        store: "CheckpointStore", stage: str, expected_fingerprint: str
    ) -> bool:
        """Re-read one published stage and re-verify its *content*.

        ``load_stage`` re-hashes the file against the manifest — which
        passes for a torn-but-atomic write — so the decisive check is
        :func:`snapshot_from_payload` recomputing the map's content
        fingerprint from the payload itself.
        """
        payload = store.load_stage(stage)
        if not isinstance(payload, dict):
            return False
        try:
            rebuilt = snapshot_from_payload(payload)
        except (KeyError, TypeError, ValueError):
            return False
        return rebuilt.fingerprint == expected_fingerprint

    def publish(self, snapshot: MapSnapshot, stage: str) -> bool:
        """Durably publish, verify, and swap one snapshot.

        Returns ``False`` when every attempt produced a corrupt durable
        copy and the publish was rolled back — the read path keeps the
        previously served snapshot and the corrupt stage is removed, so
        ``open_snapshot`` over the checkpoint directory also falls back
        to the last good version.
        """
        store = self.service.store
        if store is None:
            # No durable layer: nothing can tear, publish is a swap.
            self._announce(snapshot, None)
            self.health.record_publish(snapshot)
            return True
        attempts = self.policy.max_publish_retries + 1
        for attempt in range(attempts):
            payload = snapshot_payload(snapshot)
            injector = self.service.environment.fault_injector
            if injector is not None:
                payload = injector.corrupt_snapshot_payload(
                    payload, stage=stage, attempt=attempt
                )
            store.write_stage(stage, payload)
            if self._stage_verifies(store, stage, snapshot.fingerprint):
                self._announce(snapshot, store.stage_digest(stage))
                self.health.record_publish(snapshot)
                self._retain(stage)
                return True
            self.health.record_failure(
                reason=f"publish of {stage} attempt {attempt} "
                "failed verification"
            )
            if attempt + 1 < attempts:
                self.publish_retries += 1
                self._obs.count("serve.publish.retries")
                self._notify(
                    f"serve: publish of {stage} failed verification; "
                    "rewriting"
                )
        store.drop_stage(stage)
        fallback = self._retained[-1] if self._retained else None
        self.rollbacks += 1
        self._obs.count("serve.snapshot.rollback")
        self._obs.emit(
            "serve.snapshot.rollback",
            stage=stage,
            epoch=snapshot.epoch,
            attempts=attempts,
            fallback=fallback,
        )
        self.health.record_rollback(stage)
        self._notify(
            f"serve: publish of {stage} failed verification "
            f"{attempts} times and was rolled back"
            + (f"; still serving {fallback}" if fallback else "")
        )
        return False

    def _retain(self, stage: str) -> None:
        """Rotate the bounded ring of durable per-epoch snapshot stages."""
        if not stage.startswith(EPOCH_STAGE_PREFIX):
            return
        self._retained.append(stage)
        store = self.service.store
        while len(self._retained) > self.policy.snapshot_retention:
            oldest = self._retained.pop(0)
            if store is not None and store.drop_stage(oldest):
                self._notify(f"serve: retention ring dropped {oldest}")
