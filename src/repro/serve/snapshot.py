"""Versioned, immutable map snapshots with precomputed query indices.

A :class:`MapSnapshot` is the unit the always-on service publishes: one
frozen view of the inferred interconnection map at the end of an epoch.
Snapshots carry every query index precomputed as a plain dict —
interface→facility, AS-pair→links, facility→tenants — so the read path
is an O(1) lookup, never a rescan (the traIXroute lesson: precompute
once at publish time, serve forever).

Immutability is layered:

* every entry is a frozen dataclass with tuple-valued collections;
* every index is wrapped in :class:`types.MappingProxyType`;
* reprolint rule R009 statically bans mutation of snapshot objects
  anywhere under ``repro/serve``.

The **fingerprint** is the sha256 of the canonical-JSON *content*
(interfaces, links, tenants, map stats) and deliberately excludes epoch
numbers, ingest counters and metrics: two snapshots describing the same
map fingerprint identically, which is what lets the stream-vs-batch
equivalence test compare a streamed final snapshot against a one-shot
batch run, and what makes successive published fingerprints a cheap
outage-detection diff.  The checkpoint-store manifest checksum over the
full payload (fingerprint *plus* epoch metadata) is the publication
**watermark**.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from types import MappingProxyType
from typing import Any, Mapping

from ..checkpoint.atomic import canonical_json, sha256_hex
from ..core.types import CfsResult
from ..inference.disruption import SnapshotDiff, diff_maps
from ..sanitize import TripwireMapping, enabled as sanitizer_enabled

__all__ = [
    "SNAPSHOT_SCHEMA",
    "InterfaceEntry",
    "LinkEntry",
    "MapSnapshot",
    "SnapshotDiff",
    "build_snapshot",
    "diff_snapshots",
    "open_snapshot",
    "snapshot_from_payload",
    "snapshot_payload",
]

SNAPSHOT_SCHEMA = "repro/map-snapshot/1"


@dataclass(frozen=True, slots=True)
class InterfaceEntry:
    """One peering interface's published inference."""

    address: int
    owner_asn: int
    status: str
    inferred_type: str
    facility: int | None
    confidence: float
    data_health: str
    candidates: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class LinkEntry:
    """One published interconnection inference."""

    kind: str
    inferred_type: str
    near_address: int
    near_asn: int
    near_facility: int | None
    far_asn: int
    far_facility: int | None
    ixp_id: int | None
    ixp_address: int | None
    far_address: int | None
    confidence: float


@dataclass(frozen=True, slots=True)
class MapSnapshot:
    """One immutable, fingerprinted version of the inferred map.

    Query handlers receive this object and must treat it as read-only;
    the service swaps whole snapshots copy-on-write, never edits one in
    place (reprolint R009 enforces the read side statically).
    """

    #: 0-based index of the epoch this snapshot was published after
    #: (the final snapshot carries the epoch count).
    epoch: int
    #: Whether this is the post-stream convergence snapshot (the one
    #: byte-identical to a one-shot batch run).
    final: bool
    #: Master seed of the run that produced the map.
    seed: int
    #: :func:`repro.checkpoint.config_fingerprint` of the pipeline
    #: config (ties a snapshot to the run that may resume it).
    config_fingerprint: str
    #: Traces folded in when the snapshot was built.
    traces_ingested: int
    #: sha256 over the canonical-JSON map content (not the metadata).
    fingerprint: str
    #: address -> :class:`InterfaceEntry` for every tracked interface.
    interfaces: Mapping[int, InterfaceEntry]
    #: Every published link, in finalisation order (the fingerprinted
    #: order — the AS-pair index below groups these same entries).
    links: tuple[LinkEntry, ...]
    #: address -> facility for resolved interfaces only (the hot path).
    interface_facility: Mapping[int, int]
    #: (low ASN, high ASN) -> every inferred link between the pair.
    links_by_aspair: Mapping[tuple[int, int], tuple[LinkEntry, ...]]
    #: facility -> sorted ASNs with an inferred presence there.
    facility_tenants: Mapping[int, tuple[int, ...]]
    #: Headline counts of the published map.
    stats: Mapping[str, int]


def diff_snapshots(before: MapSnapshot, after: MapSnapshot) -> SnapshotDiff:
    """Structured diff between two published snapshots.

    Thin adapter over :func:`repro.inference.disruption.diff_maps`
    (the algorithm lives below this layer so detectors need no serve
    import): link endpoints gained/lost per facility plus tenant
    moves, composable across epochs.  Equal fingerprints short-circuit
    to a shared empty diff — the common quiet-epoch case allocates
    nothing.
    """
    return diff_maps(before, after)


def _interface_content(entry: InterfaceEntry) -> list[Any]:
    return [
        entry.address,
        entry.owner_asn,
        entry.status,
        entry.inferred_type,
        entry.facility,
        entry.confidence,
        entry.data_health,
        list(entry.candidates),
    ]


def _link_content(entry: LinkEntry) -> list[Any]:
    return [
        entry.kind,
        entry.inferred_type,
        entry.near_address,
        entry.near_asn,
        entry.near_facility,
        entry.far_asn,
        entry.far_facility,
        entry.ixp_id,
        entry.ixp_address,
        entry.far_address,
        entry.confidence,
    ]


def _content_document(
    interfaces: list[InterfaceEntry],
    links: list[LinkEntry],
    tenants: dict[int, tuple[int, ...]],
) -> dict[str, Any]:
    """The fingerprinted map content (no epoch/ingest metadata)."""
    resolved = sum(1 for entry in interfaces if entry.facility is not None)
    return {
        "interfaces": [_interface_content(entry) for entry in interfaces],
        "links": [_link_content(entry) for entry in links],
        "tenants": [
            [facility, list(tenants[facility])] for facility in sorted(tenants)
        ],
        "stats": {
            "interfaces": len(interfaces),
            "resolved": resolved,
            "links": len(links),
            "facilities": len(tenants),
        },
    }


def _index(data: dict, label: str) -> Mapping:
    """Freeze one query index for publication.

    Normally a zero-copy ``MappingProxyType``; under the sanitizer a
    :class:`TripwireMapping` instead, so an in-place write to a
    published index is recorded as a ``sanitizer.violation`` naming the
    index rather than surfacing as an anonymous ``TypeError``.
    """
    if sanitizer_enabled():
        return TripwireMapping(data, f"snapshot.{label}")
    return MappingProxyType(data)


def _assemble(
    interfaces: list[InterfaceEntry],
    links: list[LinkEntry],
    tenants: dict[int, tuple[int, ...]],
    *,
    epoch: int,
    final: bool,
    seed: int,
    config_fingerprint: str,
    traces_ingested: int,
) -> MapSnapshot:
    """Freeze entries and indices into one :class:`MapSnapshot`."""
    content = _content_document(interfaces, links, tenants)
    by_pair: dict[tuple[int, int], list[LinkEntry]] = {}
    for link in links:
        pair = (
            min(link.near_asn, link.far_asn),
            max(link.near_asn, link.far_asn),
        )
        by_pair.setdefault(pair, []).append(link)
    return MapSnapshot(
        epoch=epoch,
        final=final,
        seed=seed,
        config_fingerprint=config_fingerprint,
        traces_ingested=traces_ingested,
        fingerprint=sha256_hex(canonical_json(content)),
        interfaces=_index(
            {entry.address: entry for entry in interfaces}, "interfaces"
        ),
        links=tuple(links),
        interface_facility=_index(
            {
                entry.address: entry.facility
                for entry in interfaces
                if entry.facility is not None
            },
            "interface_facility",
        ),
        links_by_aspair=_index(
            {pair: tuple(group) for pair, group in by_pair.items()},
            "links_by_aspair",
        ),
        facility_tenants=_index(dict(tenants), "facility_tenants"),
        stats=_index(dict(content["stats"]), "stats"),
    )


def build_snapshot(
    result: CfsResult,
    *,
    epoch: int,
    final: bool,
    seed: int,
    config_fingerprint: str,
    traces_ingested: int,
) -> MapSnapshot:
    """Precompute every query index from one CFS result and freeze it.

    Interfaces are indexed in address order, links in finalisation
    order, and facility tenancy is derived from both pinned interface
    ends — all deterministic, so rebuilding a snapshot from the same
    result reproduces the same fingerprint.
    """
    interfaces = [
        InterfaceEntry(
            address=state.address,
            owner_asn=state.owner_asn,
            status=state.status.value,
            inferred_type=state.inferred_type.value,
            facility=state.resolved_facility,
            confidence=state.confidence,
            data_health=state.data_health,
            candidates=tuple(sorted(state.candidates or ())),
        )
        for _, state in sorted(result.interfaces.items())
    ]
    links = [
        LinkEntry(
            kind=link.kind.value,
            inferred_type=link.inferred_type.value,
            near_address=link.near_address,
            near_asn=link.near_asn,
            near_facility=link.near_facility,
            far_asn=link.far_asn,
            far_facility=link.far_facility,
            ixp_id=link.ixp_id,
            ixp_address=link.ixp_address,
            far_address=link.far_address,
            confidence=link.confidence,
        )
        for link in result.links
    ]
    tenant_sets: dict[int, set[int]] = {}
    for entry in interfaces:
        if entry.facility is not None:
            tenant_sets.setdefault(entry.facility, set()).add(entry.owner_asn)
    for link in links:
        if link.near_facility is not None:
            tenant_sets.setdefault(link.near_facility, set()).add(
                link.near_asn
            )
        if link.far_facility is not None:
            tenant_sets.setdefault(link.far_facility, set()).add(link.far_asn)
    tenants = {
        facility: tuple(sorted(asns))
        for facility, asns in tenant_sets.items()
    }
    return _assemble(
        interfaces,
        links,
        tenants,
        epoch=epoch,
        final=final,
        seed=seed,
        config_fingerprint=config_fingerprint,
        traces_ingested=traces_ingested,
    )


# ----------------------------------------------------------------------
# Payload codec (checkpoint stages and ``--json`` exports)
# ----------------------------------------------------------------------


def snapshot_payload(snapshot: MapSnapshot) -> dict[str, Any]:
    """The JSON-safe publication document for one snapshot."""
    interfaces = [
        snapshot.interfaces[address] for address in sorted(snapshot.interfaces)
    ]
    links = list(snapshot.links)
    tenants = {
        facility: snapshot.facility_tenants[facility]
        for facility in sorted(snapshot.facility_tenants)
    }
    return {
        "schema": SNAPSHOT_SCHEMA,
        "epoch": snapshot.epoch,
        "final": snapshot.final,
        "seed": snapshot.seed,
        "config_fingerprint": snapshot.config_fingerprint,
        "traces_ingested": snapshot.traces_ingested,
        "fingerprint": snapshot.fingerprint,
        "content": _content_document(interfaces, links, tenants),
    }


def snapshot_from_payload(payload: dict[str, Any]) -> MapSnapshot:
    """Rebuild a snapshot from its publication document.

    The content fingerprint is recomputed and verified against the
    recorded one, so a tampered or truncated document fails loudly
    here rather than serving a wrong map.
    """
    if payload.get("schema") != SNAPSHOT_SCHEMA:
        raise ValueError(
            f"not a map snapshot document (schema="
            f"{payload.get('schema')!r}, expected {SNAPSHOT_SCHEMA!r})"
        )
    content = payload["content"]
    interfaces = [
        InterfaceEntry(
            address=address,
            owner_asn=owner_asn,
            status=status,
            inferred_type=inferred_type,
            facility=facility,
            confidence=confidence,
            data_health=data_health,
            candidates=tuple(candidates),
        )
        for (
            address,
            owner_asn,
            status,
            inferred_type,
            facility,
            confidence,
            data_health,
            candidates,
        ) in content["interfaces"]
    ]
    links = [
        LinkEntry(
            kind=kind,
            inferred_type=inferred_type,
            near_address=near_address,
            near_asn=near_asn,
            near_facility=near_facility,
            far_asn=far_asn,
            far_facility=far_facility,
            ixp_id=ixp_id,
            ixp_address=ixp_address,
            far_address=far_address,
            confidence=confidence,
        )
        for (
            kind,
            inferred_type,
            near_address,
            near_asn,
            near_facility,
            far_asn,
            far_facility,
            ixp_id,
            ixp_address,
            far_address,
            confidence,
        ) in content["links"]
    ]
    tenants = {
        facility: tuple(asns) for facility, asns in content["tenants"]
    }
    snapshot = _assemble(
        interfaces,
        links,
        tenants,
        epoch=int(payload["epoch"]),
        final=bool(payload["final"]),
        seed=int(payload["seed"]),
        config_fingerprint=str(payload["config_fingerprint"]),
        traces_ingested=int(payload["traces_ingested"]),
    )
    recorded = payload.get("fingerprint")
    if snapshot.fingerprint != recorded:
        raise ValueError(
            f"snapshot content does not match its recorded fingerprint "
            f"(computed {snapshot.fingerprint[:12]}..., recorded "
            f"{str(recorded)[:12]}...)"
        )
    return snapshot


def open_snapshot(path: str | Path) -> MapSnapshot:
    """Load a published snapshot from a file or a service directory.

    A file path must hold one snapshot publication document (as written
    by ``repro serve --json``).  A directory is treated as the service's
    snapshot store: the manifest is consulted read-only (nothing is
    rewritten or invalidated), each candidate stage is checksum-verified
    against it, and the final snapshot — or, before the stream finished,
    the highest-epoch interim one — is returned.  Raises
    :class:`ValueError` when no intact snapshot exists.
    """
    root = Path(path)
    if root.is_dir():
        return _open_from_store(root)
    try:
        payload = json.loads(root.read_text(encoding="utf-8"))
    except OSError as error:
        raise ValueError(f"cannot read snapshot {root}: {error}") from None
    except json.JSONDecodeError as error:
        raise ValueError(f"snapshot {root} is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ValueError(f"snapshot {root} is not a JSON object")
    return snapshot_from_payload(payload)


def _open_from_store(root: Path) -> MapSnapshot:
    """Best intact published snapshot under a checkpoint directory."""
    manifest_path = root / "manifest.json"
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except OSError:
        raise ValueError(f"{root} holds no snapshot manifest") from None
    except json.JSONDecodeError as error:
        raise ValueError(
            f"manifest {manifest_path} is not valid JSON: {error}"
        ) from None
    stages = manifest.get("stages") if isinstance(manifest, dict) else None
    if not isinstance(stages, dict):
        raise ValueError(f"manifest {manifest_path} has no stage index")

    def rank(name: str) -> tuple[int, int] | None:
        if name == "snapshot-final":
            return (1, 0)
        prefix = "snapshot-epoch-"
        if name.startswith(prefix) and name[len(prefix):].isdigit():
            return (0, int(name[len(prefix):]))
        return None

    candidates = sorted(
        (entry for name in stages if (entry := rank(name)) is not None),
        reverse=True,
    )
    errors: list[str] = []
    for is_final, epoch in candidates:
        name = (
            "snapshot-final" if is_final else f"snapshot-epoch-{epoch}"
        )
        entry = stages[name]
        stage_path = root / str(entry.get("file", f"stage-{name}.json"))
        try:
            data = stage_path.read_bytes()
        except OSError as error:
            errors.append(f"{name}: unreadable ({error})")
            continue
        if sha256_hex(data) != entry.get("sha256"):
            errors.append(f"{name}: checksum mismatch")
            continue
        document = json.loads(data.decode("utf-8"))
        payload = document.get("payload")
        if not isinstance(payload, dict):
            errors.append(f"{name}: no payload")
            continue
        return snapshot_from_payload(payload)
    detail = f" ({'; '.join(errors)})" if errors else ""
    raise ValueError(f"{root} holds no intact published snapshot{detail}")
