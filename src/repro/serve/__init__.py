"""The always-on map service (streaming ingest + versioned snapshots).

Four pieces:

* :mod:`repro.serve.snapshot` — immutable, fingerprinted
  :class:`MapSnapshot` versions with precomputed O(1) query indices
  (interface→facility, AS-pair→links, facility→tenants), plus the
  durable payload codec and :func:`open_snapshot`;
* :mod:`repro.serve.ingest` — epoch slicing of the campaign plan and
  the :class:`StreamingCfs` incremental fold;
* :mod:`repro.serve.query` — the copy-on-write read path
  (:class:`QueryEngine`) and the line-oriented query protocol;
* :mod:`repro.serve.service` — :class:`MapService`, the daemon loop
  that executes epochs, publishes snapshots through the checkpoint
  store, and swaps them into the read path.

The contract that makes the service trustworthy: the final snapshot a
streamed run publishes is **fingerprint-identical** to the map the
one-shot batch pipeline produces from the same config
(``tests/serve/test_stream_identity.py``).
"""

from .ingest import StreamingCfs, slice_epochs
from .query import QueryEngine, query_snapshot
from .service import MapService, ServiceHandle
from .snapshot import (
    MapSnapshot,
    build_snapshot,
    open_snapshot,
    snapshot_from_payload,
    snapshot_payload,
)

__all__ = [
    "MapService",
    "MapSnapshot",
    "QueryEngine",
    "ServiceHandle",
    "StreamingCfs",
    "build_snapshot",
    "open_snapshot",
    "query_snapshot",
    "slice_epochs",
    "snapshot_from_payload",
    "snapshot_payload",
]
