"""The always-on map service (streaming ingest + versioned snapshots).

Four pieces:

* :mod:`repro.serve.snapshot` — immutable, fingerprinted
  :class:`MapSnapshot` versions with precomputed O(1) query indices
  (interface→facility, AS-pair→links, facility→tenants), plus the
  durable payload codec and :func:`open_snapshot`;
* :mod:`repro.serve.ingest` — epoch slicing of the campaign plan and
  the :class:`StreamingCfs` incremental fold;
* :mod:`repro.serve.query` — the copy-on-write read path
  (:class:`QueryEngine`) and the line-oriented query protocol;
* :mod:`repro.serve.service` — :class:`MapService`, the daemon loop
  that executes epochs, publishes snapshots through the checkpoint
  store, and swaps them into the read path;
* :mod:`repro.serve.health` — the :class:`ServiceHealth` state machine
  (``ok``/``degraded``/``stale``/``recovering``) behind the ``health``
  query verb;
* :mod:`repro.serve.supervise` — the :class:`ServiceSupervisor`
  wrapping the epoch loop: bounded retries, poisoned-epoch quarantine,
  publish-time integrity re-verification with rollback, and a bounded
  snapshot retention ring;
* :mod:`repro.serve.soak` — the chaos soak harness behind ``repro
  soak`` (imported lazily by the CLI, like :mod:`repro.faults.chaos`);
* :mod:`repro.serve.outage` — the churn × fault outage-detection
  sweep behind ``repro outage``: churned streams scored against the
  :class:`~repro.topology.churn.ChurnPlan` event log.

Temporal mode: ``run_stream(churn=...)`` re-plans the campaign every
epoch against a churned world, folds each epoch in isolation against
the lagged facility database, and feeds published snapshots through
the :class:`~repro.inference.disruption.DisruptionDetector`; churn-free
streams are bit-identical to the classic pre-sliced stream.

The contract that makes the service trustworthy: the final snapshot a
streamed run publishes is **fingerprint-identical** to the map the
one-shot batch pipeline produces from the same config
(``tests/serve/test_stream_identity.py``) — including runs whose
epochs were quarantined or whose publishes rolled back, because the
final convergence pass re-folds the full corpus in plan order.
"""

from .health import HealthPolicy, ServiceHealth
from .ingest import StreamingCfs, slice_epochs
from .outage import OutagePoint, OutageReport, measurement_faults, run_outage
from .query import QueryEngine, query_snapshot
from .service import MapService, ServiceHandle
from .snapshot import (
    MapSnapshot,
    SnapshotDiff,
    build_snapshot,
    diff_snapshots,
    open_snapshot,
    snapshot_from_payload,
    snapshot_payload,
)
from .supervise import ServicePolicy, ServiceSupervisor

__all__ = [
    "HealthPolicy",
    "MapService",
    "MapSnapshot",
    "OutagePoint",
    "OutageReport",
    "QueryEngine",
    "ServiceHandle",
    "ServiceHealth",
    "ServicePolicy",
    "ServiceSupervisor",
    "SnapshotDiff",
    "StreamingCfs",
    "build_snapshot",
    "diff_snapshots",
    "measurement_faults",
    "open_snapshot",
    "query_snapshot",
    "run_outage",
    "slice_epochs",
    "snapshot_from_payload",
    "snapshot_payload",
]
