"""Service health: the state machine behind the ``health`` query verb.

The map service knows four states:

* ``ok`` — the newest folded epoch is being served and nothing failed
  recently;
* ``degraded`` — an ingest epoch or a durable publish failed; the last
  good snapshot is still being served;
* ``stale`` — the served snapshot has fallen at least
  :attr:`HealthPolicy.stale_after` epochs behind the stream (repeated
  quarantines or rollbacks);
* ``recovering`` — a publish succeeded after a degraded/stale spell;
  one more clean publish returns the service to ``ok``.

:class:`ServiceHealth` is deliberately clockless: its inputs are the
supervisor's discrete outcomes (failure, quarantine, rollback, publish)
and its state is a pure function of that outcome sequence, so two runs
with the same fault plan report the same transition history.  Callers
that want wall-clock recovery latency (the soak harness) subscribe via
:meth:`subscribe` and timestamp transitions themselves.

Every state change goes through :meth:`ServiceHealth.transition` — the
single mutation point that validates the target state, records the
edge, emits ``serve.health.transition``, and notifies subscribers.
Reprolint rule R010 statically rejects direct state writes anywhere
outside this module.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from ..inference.disruption import ASSESSMENTS
from ..obs import Instrumentation
from ..sanitize import enabled as sanitizer_enabled, record_violation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .snapshot import MapSnapshot

__all__ = ["HEALTH_STATES", "HealthPolicy", "ServiceHealth", "snapshot_data_health"]

#: The closed state vocabulary, in "healthiest first" order.
HEALTH_STATES = ("ok", "recovering", "degraded", "stale")

#: Transition edges kept in the report's recent history.
_HISTORY_LIMIT = 32


@dataclass(frozen=True, slots=True)
class HealthPolicy:
    """Thresholds for the health state machine."""

    #: Epochs the served snapshot may trail the stream before the
    #: service reports ``stale`` instead of merely ``degraded``.
    stale_after: int = 2

    def __post_init__(self) -> None:
        if self.stale_after < 1:
            raise ValueError(
                f"stale_after={self.stale_after!r} must be at least 1"
            )


def snapshot_data_health(snapshot: "MapSnapshot | None") -> dict[str, Any]:
    """Aggregate ``data_health``/``confidence`` over a snapshot's interfaces.

    Returns interface count, the fraction whose per-interface
    ``data_health`` is ``"ok"`` (degraded-mode CFS marks widened
    inferences ``"degraded"``), and the mean inference confidence —
    the map-content side of the service health document.
    """
    if snapshot is None:
        return {"interfaces": 0, "ok_fraction": None, "mean_confidence": None}
    entries = list(snapshot.interfaces.values())
    if not entries:
        return {"interfaces": 0, "ok_fraction": None, "mean_confidence": None}
    healthy = sum(1 for entry in entries if entry.data_health == "ok")
    mean = sum(entry.confidence for entry in entries) / len(entries)
    return {
        "interfaces": len(entries),
        "ok_fraction": round(healthy / len(entries), 6),
        "mean_confidence": round(mean, 6),
    }


def _mutation_point(method: Callable) -> Callable:
    """Mark a :class:`ServiceHealth` method as a documented write site.

    The sanitizer's ``__setattr__`` guard only admits attribute writes
    while one of these frames is live; the depth counter (rather than
    a flag) keeps nested mutation points — ``record_failure`` calling
    ``transition`` — balanced.
    """

    @functools.wraps(method)
    def wrapper(self: "ServiceHealth", *args: Any, **kwargs: Any) -> Any:
        object.__setattr__(
            self, "_write_depth", getattr(self, "_write_depth", 0) + 1
        )
        try:
            return method(self, *args, **kwargs)
        finally:
            object.__setattr__(self, "_write_depth", self._write_depth - 1)

    return wrapper


class ServiceHealth:
    """The map service's health state machine.

    The supervisor feeds it discrete outcomes (:meth:`record_failure`,
    :meth:`record_quarantine`, :meth:`record_rollback`,
    :meth:`record_publish`); queries read the resulting document via
    :meth:`report`.  State only ever changes inside :meth:`transition`.

    Under the sanitizer, attribute writes outside the
    :func:`_mutation_point`-decorated methods trip ``health.write`` —
    the runtime twin of reprolint R010/R012.
    """

    def __setattr__(self, name: str, value: Any) -> None:
        if sanitizer_enabled() and getattr(self, "_write_depth", 0) == 0:
            record_violation(
                "health.write",
                f"ServiceHealth.{name} written outside a mutation point",
            )
        object.__setattr__(self, name, value)

    @_mutation_point
    def __init__(
        self,
        instrumentation: Instrumentation | None = None,
        policy: HealthPolicy | None = None,
    ) -> None:
        self._obs = instrumentation or Instrumentation()
        self.policy = policy or HealthPolicy()
        self._state = "ok"
        #: Epochs the currently served snapshot trails the stream head
        #: (0 right after a successful publish; each quarantine or
        #: rollback pushes the stream one epoch past the served map).
        self._epochs_behind = 0
        self._ingest_failures = 0
        self._consecutive_failures = 0
        self._publishes = 0
        self._quarantined: list[int] = []
        self._rollbacks = 0
        #: Recent transition edges, oldest first: (from, to, reason).
        self._history: list[tuple[str, str, str]] = []
        self._listeners: list[Callable[[str, str, str], None]] = []
        #: Latest change-vs-fault verdict from the disruption detector
        #: (None until the churned stream records one).  Kept separate
        #: from :attr:`state` on purpose: "stale because faulty" is a
        #: *service* condition, "changed because churned" is a *world*
        #: condition, and conflating them is how detectors cry wolf.
        self._map_change: dict[str, Any] | None = None

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state (one of :data:`HEALTH_STATES`)."""
        return self._state

    @property
    def epochs_behind(self) -> int:
        """How many epochs the served snapshot trails the stream."""
        return self._epochs_behind

    @property
    def ingest_failures(self) -> int:
        """Lifetime count of failed epoch/publish attempts."""
        return self._ingest_failures

    @property
    def consecutive_failures(self) -> int:
        """Failed attempts since the last successful publish."""
        return self._consecutive_failures

    @property
    def quarantined_epochs(self) -> tuple[int, ...]:
        """Epochs quarantined so far, in stream order."""
        return tuple(self._quarantined)

    @property
    def rollbacks(self) -> int:
        """Publishes rolled back after exhausting their retry budget."""
        return self._rollbacks

    @property
    def transitions(self) -> tuple[tuple[str, str, str], ...]:
        """Recent transition edges, oldest first: ``(from, to, reason)``."""
        return tuple(self._history)

    @_mutation_point
    def subscribe(self, listener: Callable[[str, str, str], None]) -> None:
        """Call ``listener(old, new, reason)`` on every state change."""
        self._listeners.append(listener)

    def report(self, snapshot: "MapSnapshot | None" = None) -> dict[str, Any]:
        """The JSON-ready health document the ``health`` verb answers with."""
        document: dict[str, Any] = {
            "query": "health",
            "state": self._state,
            "epochs_behind": self._epochs_behind,
            "stale_after": self.policy.stale_after,
            "ingest_failures": self._ingest_failures,
            "consecutive_failures": self._consecutive_failures,
            "quarantined_epochs": list(self._quarantined),
            "rollbacks": self._rollbacks,
            "publishes": self._publishes,
            "data": snapshot_data_health(snapshot),
            "transitions": [list(edge) for edge in self._history],
        }
        if self._map_change is not None:
            document["map_change"] = dict(self._map_change)
        if snapshot is not None:
            document["epoch"] = snapshot.epoch
            document["final"] = snapshot.final
            document["fingerprint"] = snapshot.fingerprint
        return document

    def as_dict(self) -> dict[str, Any]:
        """The snapshot-free health document (change-vs-fault fields
        included once the detector has reported)."""
        return self.report(None)

    @property
    def map_assessment(self) -> str | None:
        """Latest detector verdict, or None before the first one."""
        if self._map_change is None:
            return None
        return str(self._map_change.get("assessment"))

    def alarmed_facilities(self) -> tuple[int, ...]:
        """Facilities with an active disruption alarm."""
        if self._map_change is None:
            return ()
        return tuple(self._map_change.get("alarmed_facilities", ()))

    # ------------------------------------------------------------------
    # The single mutation point (reprolint R010)
    # ------------------------------------------------------------------

    @_mutation_point
    def transition(self, new_state: str, *, reason: str) -> None:
        """Move to ``new_state``, recording and announcing the edge.

        This is the **only** place :attr:`state` changes — direct
        attribute writes anywhere outside ``serve/health.py`` are
        rejected statically by reprolint R010, because they would skip
        validation, the transition history, and the
        ``serve.health.transition`` event.
        """
        if new_state not in HEALTH_STATES:
            raise ValueError(
                f"unknown health state {new_state!r}; "
                f"expected one of {', '.join(HEALTH_STATES)}"
            )
        if new_state == self._state:
            return
        old_state = self._state
        self._state = new_state
        self._history.append((old_state, new_state, reason))
        del self._history[:-_HISTORY_LIMIT]
        self._obs.count("serve.health.transition")
        self._obs.emit(
            "serve.health.transition",
            old=old_state,
            new=new_state,
            reason=reason,
            epochs_behind=self._epochs_behind,
        )
        for listener in self._listeners:
            listener(old_state, new_state, reason)

    # ------------------------------------------------------------------
    # Supervisor inputs
    # ------------------------------------------------------------------

    def _unhealthy_state(self) -> str:
        return (
            "stale"
            if self._epochs_behind >= self.policy.stale_after
            else "degraded"
        )

    @_mutation_point
    def record_failure(self, *, reason: str) -> None:
        """One epoch or publish attempt failed (a retry may follow)."""
        self._ingest_failures += 1
        self._consecutive_failures += 1
        self.transition(self._unhealthy_state(), reason=reason)

    @_mutation_point
    def record_quarantine(self, epoch: int) -> None:
        """An epoch exhausted its retry budget and was skipped."""
        self._quarantined.append(epoch)
        self._epochs_behind += 1
        self.transition(
            self._unhealthy_state(), reason=f"epoch {epoch} quarantined"
        )

    @_mutation_point
    def record_rollback(self, stage: str) -> None:
        """A publish exhausted its retry budget and was rolled back."""
        self._rollbacks += 1
        self._epochs_behind += 1
        self.transition(
            self._unhealthy_state(), reason=f"publish of {stage} rolled back"
        )

    @_mutation_point
    def record_map_assessment(self, status: dict[str, Any]) -> None:
        """Absorb the disruption detector's change-vs-fault verdict.

        ``status`` is :meth:`DisruptionDetector.status`: the assessment
        (one of the detector's closed vocabulary), active alarm
        facilities, and the global-loss / fault-pressure readings that
        justify it.  This feeds the ``health`` query verb so operators
        can distinguish "map moved because the world churned" from
        "map moved because measurements degraded" — distinct causes,
        distinct operator responses.
        """
        assessment = status.get("assessment")
        if assessment not in ASSESSMENTS:
            raise ValueError(
                f"unknown map assessment {assessment!r}; "
                f"expected one of {', '.join(ASSESSMENTS)}"
            )
        self._map_change = dict(status)
        self._obs.count("serve.health.assessment")
        self._obs.emit(
            "serve.health.assessment",
            assessment=assessment,
            active_alarms=int(status.get("active_alarms", 0)),
            global_loss=status.get("global_loss"),
            fault_pressure=status.get("fault_pressure"),
        )

    @_mutation_point
    def record_publish(self, snapshot: "MapSnapshot") -> None:
        """A snapshot was durably published and is now being served.

        A clean publish after a degraded/stale spell lands in
        ``recovering``; the next one returns to ``ok`` — so recovery is
        always the observable two-step ``degraded → recovering → ok``,
        never a silent jump.
        """
        self._publishes += 1
        self._epochs_behind = 0
        self._consecutive_failures = 0
        if self._state in ("degraded", "stale"):
            target = "recovering"
        else:
            target = "ok"
        self.transition(
            target,
            reason=f"published {'final' if snapshot.final else 'epoch'} "
            f"snapshot {snapshot.epoch}",
        )
