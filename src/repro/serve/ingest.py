"""Streaming ingest: epoch slicing and the incremental map fold.

The always-on service simulates a continuous traceroute feed by
partitioning the deterministic initial-campaign probe plan into
contiguous **epochs** and executing them in plan order.  Planning draws
every sampling decision from the driver's sequential RNG up front and
per-task execution consumes no shared randomness, so the union of the
epoch slices is byte-identical to the one-shot batch campaign — the
foundation of the stream-vs-batch equivalence guarantee.

Between epochs, :class:`StreamingCfs` folds the new traces into a
persistent incremental search state (the PR-1 dirty-set machinery:
cached per-trace extractions, sticky conflicts, alias-refresh-on-growth)
and produces *interim* map views for early snapshots.  The fold is
**passive** — it issues no follow-up probes and, critically, resolves
aliases against a **private** IP-ID responder: the environment's shared
responder is stateful, and touching it mid-stream would perturb the
post-stream convergence pass that must match the batch pipeline
byte-for-byte.  Interim snapshots are best-effort early views; the
final published snapshot always comes from a full
:meth:`Environment.run_cfs` convergence pass over the accumulated
corpus, with exactly the batch run's seeds and substrates.
"""

from __future__ import annotations

from ..alias.midar import AliasSets, MidarConfig, MidarResolver, repair_ip_to_asn
from ..core.alias_constraints import propagate_alias_constraints
from ..core.classify import PeeringClassifier
from ..core.constrain import InitialFacilitySearch
from ..core.facility_db import FacilityDatabase
from ..core.farside import LinkFinalizer
from ..core.pipeline import Environment
from ..core.types import CfsResult, InterfaceState, ObservedPeering, PeeringKind
from ..measurement.campaign import ProbeTask
from ..measurement.ipid import IpidResponder
from ..measurement.traceroute import Traceroute
from ..obs import Instrumentation

__all__ = ["StreamingCfs", "slice_epochs"]

#: Seed offsets for the fold's private alias substrate.  Distinct from
#: every offset the batch pipeline uses (drivers at +1000+k, the shared
#: MIDAR at +2000+k) so interim resolution perturbs nothing the final
#: convergence pass depends on.
_PRIVATE_IPID_OFFSET = 3000
_PRIVATE_MIDAR_OFFSET = 3001


def slice_epochs(plan: list[ProbeTask], epochs: int) -> list[list[ProbeTask]]:
    """Partition a probe plan into ``epochs`` contiguous slices.

    Earlier epochs absorb the remainder, so sizes differ by at most one
    and concatenating the slices reproduces the plan exactly.

    When ``epochs > len(plan)`` the trailing slices are **empty** —
    pinned, tested behavior, not an accident: an empty epoch folds no
    traces, so the service publishes a snapshot with an *unchanged
    content fingerprint* and health stays ``ok``.  A feed running dry
    is "no new data", not an incident; the disruption detector sees an
    empty diff and keeps quiet.
    """
    if epochs < 1:
        raise ValueError(f"epochs must be at least 1, got {epochs}")
    base, extra = divmod(len(plan), epochs)
    slices: list[list[ProbeTask]] = []
    start = 0
    for index in range(epochs):
        size = base + (1 if index < extra else 0)
        slices.append(plan[start : start + size])
        start += size
    return slices


class StreamingCfs:
    """Persistent incremental fold of a growing trace stream.

    Mirrors the incremental engine's Steps 1-3 (extract, constrain,
    propagate) with state that survives across epochs: the address
    mapping, the per-trace extraction cache, the accumulated crossing
    observations, sticky conflicts, and the interface states.  Step 4
    (targeted follow-ups) is deliberately absent — the fold never
    probes, so it cannot disturb the deterministic substrate the final
    convergence pass shares with the batch pipeline.
    """

    def __init__(
        self,
        environment: Environment,
        instrumentation: Instrumentation | None = None,
        facility_db: FacilityDatabase | None = None,
    ) -> None:
        """``facility_db`` overrides the environment's constraint
        database — the churned stream folds each epoch against a
        *lagged* PeeringDB view (the database trails reality), while
        the measurement substrate stays the environment's own."""
        config = environment.config.cfs
        seed = environment.config.seed
        self._obs = instrumentation or Instrumentation()
        self._db = facility_db if facility_db is not None else environment.facility_db
        self._ip_to_asn = environment.cymru
        self._classifier = PeeringClassifier(
            self._db, instrumentation=self._obs
        )
        self._search = InitialFacilitySearch(
            self._db,
            environment.remote_detector(),
            constrain_private_far_side=config.constrain_private_far_side,
            degraded=config.degraded_mode,
            instrumentation=self._obs,
        )
        # Private alias substrate: the shared env.ipid_responder is
        # stateful, so interim resolution gets its own responder (and no
        # fault injector — injector RNG streams are shared state too).
        self._midar = MidarResolver(
            IpidResponder(
                environment.topology, seed=seed + _PRIVATE_IPID_OFFSET
            ),
            config=MidarConfig(),
            seed=seed + _PRIVATE_MIDAR_OFFSET,
            instrumentation=self._obs,
        )
        self._use_alias_constraints = config.use_alias_constraints
        self._use_asn_repair = config.use_asn_repair
        self._use_proximity = config.use_proximity
        self._refresh_fraction = config.alias_refresh_fraction
        self._constrain_private_far = config.constrain_private_far_side

        # --- fold state (survives across epochs) ----------------------
        self._known_addresses: set[int] = set()
        self._raw_mapping: dict[int, int | None] = {}
        self._mapping: dict[int, int | None] = {}
        self._alias_sets = AliasSets()
        self._addresses_at_last_resolve = 0
        self._traces: list[Traceroute] = []
        self._trace_records: list[dict[tuple, ObservedPeering] | None] = []
        self._observations: dict[tuple, ObservedPeering] = {}
        self._sticky_conflicts: set[tuple] = set()
        self._states: dict[int, InterfaceState] = {}
        self._folds = 0

    # ------------------------------------------------------------------

    @property
    def traces_folded(self) -> int:
        """Traces absorbed so far."""
        return len(self._traces)

    def fold(self, traces: list[Traceroute]) -> None:
        """Absorb one epoch's traces into the live search state."""
        self._folds += 1
        self._traces.extend(traces)

        # Map newly observed addresses.
        fresh = [
            address
            for trace in traces
            for address in trace.responsive_addresses()
            if address not in self._known_addresses
        ]
        for address in fresh:
            self._known_addresses.add(address)
            asn = self._ip_to_asn.lookup(address)
            self._raw_mapping[address] = asn
            self._mapping[address] = asn

        # Alias refresh on first fold or sufficient pool growth (the
        # incremental engine's policy, applied per epoch).
        refreshed = False
        grown = len(self._known_addresses) - self._addresses_at_last_resolve
        if self._folds == 1 or grown > (
            self._refresh_fraction * max(1, self._addresses_at_last_resolve)
        ):
            self._alias_sets = self._midar.resolve(
                sorted(self._known_addresses)
            )
            self._addresses_at_last_resolve = len(self._known_addresses)
            previous_mapping = self._mapping
            if self._use_asn_repair:
                self._mapping = repair_ip_to_asn(
                    self._alias_sets, self._raw_mapping
                )
            else:
                self._mapping = dict(self._raw_mapping)
            refreshed = True
            self._obs.count("ingest.alias_refreshes")

        # Step 1: extract crossings from the new traces (and re-extract
        # cached ones whose mapping moved under the refresh).
        dirty: set[tuple] | None
        if refreshed:
            if self._folds > 1:
                self._reparse_moved(previous_mapping)
            dirty = None  # post-refresh: revisit every crossing once
        else:
            dirty = set(self._sticky_conflicts)
        merge = PeeringClassifier.merge
        new_keys: set[tuple] = set()
        start = len(self._trace_records)
        for trace in self._traces[start:]:
            records = (
                self._classifier.extract([trace], self._mapping, into={})
                or None
            )
            self._trace_records.append(records)
            if records is None:
                continue
            for record in records.values():
                merge(self._observations, record)
            new_keys.update(records)
        if dirty is not None:
            dirty |= new_keys

        # Step 2: apply constraints (dirty-set or full post-refresh pass).
        applied = 0
        if dirty is None:
            for observation in self._observations.values():
                applied += 1
                self._apply(observation)
        elif dirty:
            # Dict order is first-appearance order; walking the dict
            # keeps application order deterministic (same discipline as
            # the incremental engine).
            for key, observation in self._observations.items():
                if key not in dirty:
                    continue
                applied += 1
                self._apply(observation)
        self._obs.count("ingest.observations_applied", applied)

        # Step 3: propagate across aliases and settle statuses.
        if self._use_alias_constraints and len(self._alias_sets):
            propagate_alias_constraints(self._states, self._alias_sets)
            self._search.refresh_statuses(self._states)

    def _reparse_moved(self, previous_mapping: dict[int, int | None]) -> None:
        """Re-extract cached traces whose address mapping moved."""
        moved = {
            address
            for address, asn in self._mapping.items()
            if previous_mapping.get(address) != asn
        }
        if not moved:
            return
        disjoint = moved.isdisjoint
        touched = [
            index
            for index in range(len(self._trace_records))
            if not disjoint(self._traces[index].responsive_addresses())
        ]
        for index in touched:
            self._trace_records[index] = (
                self._classifier.extract(
                    [self._traces[index]], self._mapping, into={}
                )
                or None
            )
        if touched:
            rebuilt: dict[tuple, ObservedPeering] = {}
            merge = PeeringClassifier.merge
            for records in self._trace_records:
                if records is None:
                    continue
                for record in records.values():
                    merge(rebuilt, record)
            self._observations = rebuilt

    def _apply(self, observation: ObservedPeering) -> None:
        """Step-2 application with sticky-conflict tracking."""
        involved = [observation.near_address]
        if observation.kind is PeeringKind.PUBLIC:
            if observation.ixp_address is not None:
                involved.append(observation.ixp_address)
        elif (
            observation.far_address is not None
            and self._constrain_private_far
        ):
            involved.append(observation.far_address)
        before = sum(
            self._states[address].conflicts
            for address in involved
            if address in self._states
        )
        self._search.apply(observation, self._states)
        after = sum(
            self._states[address].conflicts
            for address in involved
            if address in self._states
        )
        key = observation.key()
        if after > before:
            self._sticky_conflicts.add(key)
        else:
            self._sticky_conflicts.discard(key)

    # ------------------------------------------------------------------

    def interim_result(self) -> CfsResult:
        """A point-in-time view of the folded map.

        Finalisation runs against a **fresh** :class:`LinkFinalizer`
        (fresh proximity model) each time, so building an interim view
        is a pure function of the current fold state — calling it twice
        in a row, or after a checkpoint-restore replay of the same
        epochs, yields identical links.
        """
        finalizer = LinkFinalizer(self._db)
        links = finalizer.finalize(
            self._observations, self._states, use_proximity=self._use_proximity
        )
        return CfsResult(
            interfaces=self._states,
            links=links,
            history=[],
            iterations_run=self._folds,
            followup_traces=0,
            peering_interfaces_seen=len(self._states),
            metrics=None,
            alias_sets=self._alias_sets,
        )
