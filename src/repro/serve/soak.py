"""Chaos soak harness: query threads hammering a faulty ingest stream.

``repro soak`` (and ``benchmarks/bench_soak.py``) runs the full
self-healing story end to end: a :class:`~repro.serve.MapService`
streams epochs under seeded ``epoch_fail``/``snapshot_corrupt`` faults
— retrying, quarantining, rolling back — while worker threads fire a
seeded query workload at the live :class:`~repro.serve.QueryEngine`
the whole time.  The harness records:

* **availability** — the fraction of queries answered from *some*
  published snapshot (the copy-on-write read path never serves a torn
  or missing map, so this should be 1.0 across any quarantine);
* **error budget** — workload query errors against an allowed
  fraction (the seeded workload is all-valid lines, so any error is a
  service bug);
* **staleness distribution** — ``epochs_behind`` sampled at each
  query, showing how far the served map trailed the stream;
* **recovery latency** — wall-clock seconds from leaving ``ok`` to
  re-entering it, measured by timestamping health transitions from a
  subscriber (the state machine itself stays clockless);
* **the identity gate** — the faulted stream's final fingerprint
  against a fault-free batch run of the same seed, which must match:
  service faults never touch what the probes observe, and the final
  convergence pass re-folds the full corpus in plan order.

Everything measurable is seeded: the fault draws are keyed per
(epoch|stage, attempt), the workload per thread — only the wall-clock
timings vary between runs.

The default profile (seed 8, 8 epochs, the moderate plan's service
rates at intensity 1.0, retry budget 1) deterministically exercises at
least one epoch quarantine *and* one publish rollback and still
publishes the final snapshot cleanly.
"""

from __future__ import annotations

import dataclasses
import tempfile
import threading
import time
from dataclasses import dataclass, field
from random import Random
from typing import Any, Callable

from ..checkpoint import config_fingerprint
from ..core.pipeline import PipelineConfig, run_pipeline
from ..exec import substream
from ..faults import FaultPlan
from ..obs import Instrumentation
from ..sanitize import (
    armed as sanitizer_armed,
    assert_rng,
    enabled as sanitizer_enabled,
    violations as sanitizer_violations,
)
from .service import MapService
from .snapshot import MapSnapshot, build_snapshot
from .supervise import ServicePolicy

__all__ = ["SOAK_SCHEMA", "SoakReport", "run_soak", "soak_plan"]

SOAK_SCHEMA = "repro/soak-report/1"

#: Deterministic defaults that exercise ≥1 quarantine and ≥1 rollback.
DEFAULT_SEED = 8
DEFAULT_EPOCHS = 8

#: Retry budgets tight enough that moderate per-attempt rates actually
#: exhaust them within one soak run.
DEFAULT_POLICY = ServicePolicy(max_epoch_retries=1, max_publish_retries=1)


def soak_plan(intensity: float = 1.0) -> FaultPlan:
    """The service-layer slice of the moderate profile, scaled.

    Only ``epoch_fail``/``snapshot_corrupt`` are kept: probe and
    dataset faults perturb what the map *contains*, which would break
    the soak's fingerprint-identity gate against a fault-free batch
    run.  Service faults by design do not.
    """
    base = FaultPlan.moderate()
    return FaultPlan(
        epoch_fail=base.epoch_fail, snapshot_corrupt=base.snapshot_corrupt
    ).scaled(intensity)


@dataclass(slots=True)
class SoakReport:
    """Everything one soak run measured (JSON-ready via :meth:`as_dict`)."""

    seed: int
    scale: str
    epochs: int
    threads: int
    intensity: float
    plan: dict[str, float]
    #: Total workload queries issued across every thread.
    queries: int = 0
    #: Queries answered from a published snapshot (or the health verb).
    answered: int = 0
    #: Workload responses carrying an ``error`` key, plus any exception
    #: a query thread caught (the workload is all-valid lines).
    query_errors: int = 0
    #: Allowed error fraction; the seeded workload expects 0.
    error_budget: float = 0.0
    #: ``epochs_behind`` sampled at each query -> occurrence count.
    staleness: dict[int, int] = field(default_factory=dict)
    #: Seconds from each departure from ``ok`` to the next return.
    recovery_seconds: list[float] = field(default_factory=list)
    #: Timestamp-ordered health edges: (old, new, reason).
    transitions: list[tuple[str, str, str]] = field(default_factory=list)
    epoch_retries: int = 0
    quarantines: int = 0
    quarantined_epochs: list[int] = field(default_factory=list)
    publish_retries: int = 0
    rollbacks: int = 0
    drains: int = 0
    final_state: str = "ok"
    final_fingerprint: str | None = None
    batch_fingerprint: str | None = None
    #: Identity-gate verdict (``None`` when the gate was skipped).
    identical: bool | None = None
    wall_seconds: float = 0.0
    first_error: str | None = None
    #: Whether the reprosan runtime sanitizer was armed for this run.
    sanitized: bool = False
    #: ``sanitizer.violation`` records during the run (must stay 0).
    sanitizer_violations: int = 0

    @property
    def availability(self) -> float:
        """Fraction of queries answered from some published snapshot."""
        return self.answered / self.queries if self.queries else 1.0

    @property
    def within_budget(self) -> bool:
        """Whether workload errors stayed inside :attr:`error_budget`."""
        if not self.queries:
            return True
        return (self.query_errors / self.queries) <= self.error_budget

    @property
    def ok(self) -> bool:
        """The soak's headline verdict: full availability, errors in
        budget, and (when checked) the identity gate held."""
        return (
            self.availability == 1.0
            and self.within_budget
            and self.identical is not False
            and self.sanitizer_violations == 0
        )

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready rendering (the BENCH_soak.json building block)."""
        return {
            "schema": SOAK_SCHEMA,
            "seed": self.seed,
            "scale": self.scale,
            "epochs": self.epochs,
            "threads": self.threads,
            "intensity": self.intensity,
            "plan": dict(self.plan),
            "queries": self.queries,
            "answered": self.answered,
            "availability": round(self.availability, 6),
            "query_errors": self.query_errors,
            "error_budget": self.error_budget,
            "within_budget": self.within_budget,
            "staleness": {
                str(behind): count
                for behind, count in sorted(self.staleness.items())
            },
            "recovery_seconds": [round(s, 6) for s in self.recovery_seconds],
            "transitions": [list(edge) for edge in self.transitions],
            "epoch_retries": self.epoch_retries,
            "quarantines": self.quarantines,
            "quarantined_epochs": list(self.quarantined_epochs),
            "publish_retries": self.publish_retries,
            "rollbacks": self.rollbacks,
            "drains": self.drains,
            "final_state": self.final_state,
            "final_fingerprint": self.final_fingerprint,
            "batch_fingerprint": self.batch_fingerprint,
            "identical": self.identical,
            "wall_seconds": round(self.wall_seconds, 3),
            "first_error": self.first_error,
            "sanitized": self.sanitized,
            "sanitizer_violations": self.sanitizer_violations,
            "ok": self.ok,
        }

    def format(self) -> str:
        """Human-readable summary for the CLI."""
        staleness = ", ".join(
            f"{behind}:{count}"
            for behind, count in sorted(self.staleness.items())
        )
        recovery = (
            f"{max(self.recovery_seconds):.3f}s max"
            if self.recovery_seconds
            else "n/a"
        )
        identity = {True: "ok", False: "BROKEN", None: "skipped"}[
            self.identical
        ]
        if not self.sanitized:
            sanitizer = "off"
        elif self.sanitizer_violations:
            sanitizer = f"{self.sanitizer_violations} VIOLATION(S)"
        else:
            sanitizer = "clean"
        lines = [
            f"soak: seed={self.seed} scale={self.scale} "
            f"epochs={self.epochs} threads={self.threads} "
            f"intensity={self.intensity}",
            f"  queries {self.queries}, availability "
            f"{self.availability:.4f}, errors {self.query_errors} "
            f"(budget {self.error_budget})",
            f"  staleness {{{staleness}}} (epochs behind : queries)",
            f"  incidents: {self.epoch_retries} epoch retries, "
            f"{self.quarantines} quarantines {self.quarantined_epochs}, "
            f"{self.publish_retries} publish retries, "
            f"{self.rollbacks} rollbacks, {self.drains} drains",
            f"  recovery {recovery}, final state {self.final_state}, "
            f"identity gate {identity}, sanitizer {sanitizer}",
            f"  wall {self.wall_seconds:.1f}s -> "
            f"{'OK' if self.ok else 'FAILED'}",
        ]
        return "\n".join(lines)


#: Workload mix: weights per query kind (drawn per query, per thread).
_WORKLOAD = (
    ("iface_hit", 4),
    ("iface_miss", 1),
    ("link", 3),
    ("tenants", 2),
    ("info", 1),
    ("health", 2),
)
_WORKLOAD_TOTAL = sum(weight for _, weight in _WORKLOAD)


def _pick_kind(rng: Random) -> str:
    draw = rng.randrange(_WORKLOAD_TOTAL)
    for kind, weight in _WORKLOAD:
        draw -= weight
        if draw < 0:
            return kind
    return "info"  # pragma: no cover - unreachable


class _SnapshotKeys:
    """Per-fingerprint cache of the index keys a workload samples from."""

    def __init__(self) -> None:
        self._cache: dict[str, tuple[list, list, list]] = {}
        self._lock = threading.Lock()

    def for_snapshot(self, snapshot: MapSnapshot) -> tuple[list, list, list]:
        with self._lock:
            cached = self._cache.get(snapshot.fingerprint)
            if cached is None:
                cached = (
                    sorted(snapshot.interfaces),
                    sorted(snapshot.links_by_aspair),
                    sorted(snapshot.facility_tenants),
                )
                self._cache[snapshot.fingerprint] = cached
        return cached


def _workload_line(
    rng: Random, snapshot: MapSnapshot, keys: _SnapshotKeys
) -> str:
    addresses, aspairs, facilities = keys.for_snapshot(snapshot)
    kind = _pick_kind(assert_rng(rng, "soak.workload"))
    if kind == "iface_hit" and addresses:
        return f"iface {rng.choice(addresses)}"
    if kind == "iface_miss":
        return f"iface {rng.randrange(1 << 32)}"
    if kind == "link" and aspairs:
        near, far = rng.choice(aspairs)
        return f"link {far} {near}"
    if kind == "tenants" and facilities:
        return f"tenants {rng.choice(facilities)}"
    if kind == "health":
        return "health"
    return "info"


def run_soak(
    *,
    seed: int = DEFAULT_SEED,
    scale: str = "small",
    epochs: int = DEFAULT_EPOCHS,
    threads: int = 4,
    intensity: float = 1.0,
    plan: FaultPlan | None = None,
    policy: ServicePolicy | None = None,
    checkpoint_dir: str | None = None,
    error_budget: float = 0.0,
    verify_identity: bool = True,
    sanitize: bool = False,
    instrumentation: Instrumentation | None = None,
    progress: Callable[[str], None] | None = None,
) -> SoakReport:
    """Run one chaos soak and measure how the service held up.

    Starts ``threads`` query workers (each waits for the first
    publish, then hammers seeded workload lines until the stream
    ends), runs the faulty stream to completion on the calling thread,
    then (optionally) replays a fault-free batch run of the same seed
    for the fingerprint-identity gate.

    ``checkpoint_dir=None`` soaks in a temporary directory — the
    durable store is required, since ``snapshot_corrupt`` tears
    durable writes.

    ``sanitize=True`` arms the reprosan runtime sanitizer for the
    whole soak (including the identity-gate batch replay); violations
    land in :attr:`SoakReport.sanitizer_violations` and fail
    :attr:`SoakReport.ok`.
    """
    if sanitize and not sanitizer_enabled():
        with sanitizer_armed(instrumentation):
            return run_soak(
                seed=seed,
                scale=scale,
                epochs=epochs,
                threads=threads,
                intensity=intensity,
                plan=plan,
                policy=policy,
                checkpoint_dir=checkpoint_dir,
                error_budget=error_budget,
                verify_identity=verify_identity,
                instrumentation=instrumentation,
                progress=progress,
            )
    if threads < 1:
        raise ValueError(f"threads={threads!r} must be at least 1")
    if error_budget < 0:
        raise ValueError(f"error_budget={error_budget!r} must not be negative")
    plan = plan if plan is not None else soak_plan(intensity)
    policy = policy or DEFAULT_POLICY
    violations_before = len(sanitizer_violations())
    report = SoakReport(
        seed=seed,
        scale=scale,
        epochs=epochs,
        threads=threads,
        intensity=intensity,
        plan=plan.as_dict(),
        error_budget=error_budget,
        sanitized=sanitizer_enabled(),
    )
    with tempfile.TemporaryDirectory(prefix="repro-soak-") as scratch:
        base = PipelineConfig.for_scale(scale, seed=seed)
        config = dataclasses.replace(
            base, faults=plan, checkpoint_dir=checkpoint_dir or scratch
        )
        service = MapService(
            config,
            instrumentation=instrumentation,
            progress=progress,
            policy=policy,
        )
        health = service.health
        engine = service.engine

        timed_edges: list[tuple[float, str, str, str]] = []
        health.subscribe(
            lambda old, new, reason: timed_edges.append(
                (time.perf_counter(), old, new, reason)
            )
        )

        stop = threading.Event()
        keys = _SnapshotKeys()
        counts_lock = threading.Lock()

        def worker(tid: int) -> None:
            rng = substream("soak", seed, tid)
            queries = answered = errors = 0
            staleness: dict[int, int] = {}
            first_error: str | None = None
            while not stop.is_set():
                snapshot = engine.current()
                if snapshot is None:
                    time.sleep(0.001)  # pre-publish warm-up
                    continue
                line = _workload_line(rng, snapshot, keys)
                behind = health.epochs_behind
                try:
                    response = engine.execute(line)
                except Exception as error:  # a query must never raise
                    queries += 1
                    errors += 1
                    if first_error is None:
                        first_error = f"{line!r} raised {error!r}"
                    continue
                queries += 1
                staleness[behind] = staleness.get(behind, 0) + 1
                if "error" in response:
                    errors += 1
                    if first_error is None:
                        first_error = f"{line!r} -> {response['error']!r}"
                elif "fingerprint" in response or response.get("query") == (
                    "health"
                ):
                    answered += 1
            with counts_lock:
                report.queries += queries
                report.answered += answered
                report.query_errors += errors
                for behind, count in staleness.items():
                    report.staleness[behind] = (
                        report.staleness.get(behind, 0) + count
                    )
                if report.first_error is None:
                    report.first_error = first_error

        pool = [
            threading.Thread(target=worker, args=(tid,), daemon=True)
            for tid in range(threads)
        ]
        started = time.perf_counter()
        for thread in pool:
            thread.start()
        try:
            handle = service.run_stream(epochs=epochs)
        finally:
            stop.set()
            for thread in pool:
                thread.join()
        report.wall_seconds = time.perf_counter() - started

        supervisor = service.supervisor
        report.epoch_retries = supervisor.retries
        report.quarantines = len(supervisor.quarantined)
        report.quarantined_epochs = list(supervisor.quarantined)
        report.publish_retries = supervisor.publish_retries
        report.rollbacks = supervisor.rollbacks
        report.drains = supervisor.drains
        report.final_state = health.state
        report.transitions = [
            (old, new, reason) for _, old, new, reason in timed_edges
        ]
        report.recovery_seconds = _recovery_latencies(timed_edges)
        report.final_fingerprint = (
            handle.final.fingerprint if handle.final is not None else None
        )

        if verify_identity and handle.final is not None:
            clean = PipelineConfig.for_scale(scale, seed=seed)
            batch = run_pipeline(clean)
            batch_snapshot = build_snapshot(
                batch.cfs_result,
                epoch=epochs,
                final=True,
                seed=seed,
                config_fingerprint=config_fingerprint(clean),
                traces_ingested=len(batch.corpus),
            )
            report.batch_fingerprint = batch_snapshot.fingerprint
            report.identical = (
                batch_snapshot.fingerprint == report.final_fingerprint
            )
    report.sanitizer_violations = (
        len(sanitizer_violations()) - violations_before
    )
    return report


def _recovery_latencies(
    timed_edges: list[tuple[float, str, str, str]],
) -> list[float]:
    """Seconds from each departure from ``ok`` to the next return to it."""
    latencies: list[float] = []
    left_ok_at: float | None = None
    for stamp, old, new, _reason in timed_edges:
        if old == "ok" and left_ok_at is None:
            left_ok_at = stamp
        if new == "ok" and left_ok_at is not None:
            latencies.append(stamp - left_ok_at)
            left_ok_at = None
    return latencies
