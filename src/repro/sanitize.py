"""reprosan — the opt-in runtime sanitizer twin of the flow rules.

reprolint's interprocedural rules (R011 seed provenance, R012
shared-state races, R013 exception containment) prove invariants about
the *source*; this module cross-checks the same invariants about the
*running process*, the way ``Instrumentation(strict=True)`` is R004's
runtime twin.  Off by default and free when off; enable it with
``REPRO_SANITIZE=1`` in the environment, ``PipelineConfig(sanitize=
True)``, or :func:`enable` in tests.

Three tripwires:

* **RNG provenance tags** — :func:`repro.exec.substream` stamps every
  stream it builds with its derivation parts (:func:`tag_rng`), and
  the pipeline's draw chokepoints call :func:`assert_rng`; a draw from
  an untagged stream is exactly the ambient-RNG flow R011 flags
  statically.
* **Snapshot write tripwires** — served :class:`MapSnapshot` indices
  are wrapped in :class:`TripwireMapping`, so any in-place mutation of
  a published map (R009/R012 territory) raises instead of silently
  corrupting concurrent readers.
* **Health write guard** — :class:`~repro.serve.health.ServiceHealth`
  installs a ``__setattr__`` guard so state writes outside its
  documented mutation points (R010/R012 territory) trip at runtime.

Every trip is recorded via :func:`record_violation`: appended to a
process-wide list (:func:`violations`), emitted as the registered
``sanitizer.violation`` event when an observer is attached, and raised
as :class:`SanitizerViolation` — an ``AssertionError`` subclass, so
supervisors that contain operational failures still let it fail loud
(R013's contract carve-out).

This module deliberately imports nothing from the rest of the tree
(layer 0 in the R014 DAG): the pipeline hands it an observer object
instead of the other way around.
"""

from __future__ import annotations

import contextlib
import os
import threading
from collections.abc import Mapping
from typing import Any, Iterator

__all__ = [
    "SanitizerViolation",
    "TripwireMapping",
    "armed",
    "assert_rng",
    "attach_observer",
    "disable",
    "enable",
    "enabled",
    "record_violation",
    "reset",
    "rng_provenance",
    "tag_rng",
    "violations",
]

#: Environment switch checked when no explicit override is in force.
ENV_FLAG = "REPRO_SANITIZE"

#: Attribute carrying a tagged RNG's derivation, e.g. ``"trace:0:12"``.
_PROVENANCE_ATTR = "_repro_provenance"


class SanitizerViolation(AssertionError):
    """A runtime determinism-invariant violation.

    Subclasses ``AssertionError`` on purpose: supervision boundaries
    contain *operational* failures, but an invariant assertion must
    never be swallowed — R013 exempts assertion types from every
    containment contract, and this class rides that exemption.
    """


_lock = threading.Lock()
_forced: bool | None = None
_observer: Any | None = None
_violations: list[dict[str, str]] = []


def enabled() -> bool:
    """Whether the sanitizer is active (override, else environment)."""
    if _forced is not None:
        return _forced
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


def enable() -> None:
    """Force the sanitizer on (overrides the environment)."""
    global _forced
    _forced = True


def disable() -> None:
    """Force the sanitizer off (overrides the environment)."""
    global _forced
    _forced = False


def reset() -> None:
    """Back to environment-driven mode; clears recorded violations and
    detaches the observer (test isolation helper)."""
    global _forced, _observer
    _forced = None
    _observer = None
    with _lock:
        _violations.clear()


@contextlib.contextmanager
def armed(observer: Any | None = None) -> Iterator[None]:
    """Force the sanitizer on for a scope, then restore prior state.

    ``run_pipeline(PipelineConfig(sanitize=True))`` runs its stages
    under this, optionally routing violations to the run's
    instrumentation; recorded violations survive the scope so callers
    can inspect them after a trip propagates.
    """
    global _forced, _observer
    prior = (_forced, _observer)
    _forced = True
    if observer is not None:
        _observer = observer
    try:
        yield
    finally:
        _forced, _observer = prior


def attach_observer(instrumentation: Any) -> None:
    """Route future violations to ``instrumentation`` as
    ``sanitizer.violation`` events (count + emit)."""
    global _observer
    _observer = instrumentation


def violations() -> tuple[dict[str, str], ...]:
    """Every violation recorded since the last :func:`reset`."""
    with _lock:
        return tuple(dict(entry) for entry in _violations)


def record_violation(kind: str, detail: str) -> None:
    """Record one violation and raise :class:`SanitizerViolation`.

    The event is emitted *before* the raise so the observability trail
    survives even if the exception is (wrongly) swallowed upstream.
    """
    entry = {"kind": kind, "detail": detail}
    with _lock:
        _violations.append(entry)
    observer = _observer
    if observer is not None:
        observer.count("sanitizer.violation")
        observer.emit("sanitizer.violation", kind=kind, detail=detail)
    raise SanitizerViolation(f"{kind}: {detail}")


# ----------------------------------------------------------------------
# RNG provenance
# ----------------------------------------------------------------------


def tag_rng(rng: Any, *parts: object) -> Any:
    """Stamp ``rng`` with its derivation; returns ``rng`` unchanged.

    Tagging is unconditional — one ``setattr`` at stream construction
    costs nothing and means streams built before the sanitizer was
    armed still carry provenance when a chokepoint later asserts it.
    Only :func:`assert_rng` is gated on :func:`enabled`.
    """
    try:
        setattr(
            rng,
            _PROVENANCE_ATTR,
            ":".join(str(part) for part in parts),
        )
    except (AttributeError, TypeError):  # slotted/foreign RNGs
        pass
    return rng


def rng_provenance(rng: Any) -> str | None:
    """The derivation stamped on ``rng``, or None if untagged."""
    return getattr(rng, _PROVENANCE_ATTR, None)


def assert_rng(rng: Any, site: str) -> Any:
    """Assert ``rng`` carries substream provenance before a draw.

    Chokepoints on the trace/alias/fault/ingest draw paths call this;
    an untagged stream reaching one means ambient or cross-shard RNG
    state leaked into inference — the runtime mirror of R011.
    """
    if enabled() and rng_provenance(rng) is None:
        record_violation(
            "rng.untagged",
            f"{site}: draw from an RNG without substream provenance",
        )
    return rng


# ----------------------------------------------------------------------
# Write tripwires
# ----------------------------------------------------------------------


class TripwireMapping(Mapping):
    """Read-only mapping view whose mutators trip the sanitizer.

    Drop-in for ``types.MappingProxyType`` on the serve read path: the
    proxy's ``TypeError`` becomes a recorded ``sanitizer.violation``
    plus :class:`SanitizerViolation`, naming the snapshot index that
    somebody tried to edit in place.
    """

    __slots__ = ("_data", "_label")

    def __init__(self, data: Mapping, label: str) -> None:
        self._data = data
        self._label = label

    # Read side: plain delegation.
    def __getitem__(self, key: Any) -> Any:
        return self._data[key]

    def __iter__(self) -> Iterator:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TripwireMapping({self._label}, {self._data!r})"

    # Write side: every mutator trips.
    def _trip(self, operation: str) -> None:
        record_violation(
            "snapshot.write",
            f"{operation} on immutable mapping {self._label!r}",
        )

    def __setitem__(self, key: Any, value: Any) -> None:
        self._trip(f"__setitem__({key!r})")

    def __delitem__(self, key: Any) -> None:
        self._trip(f"__delitem__({key!r})")

    def clear(self) -> None:
        self._trip("clear()")

    def pop(self, key: Any, *default: Any) -> Any:
        self._trip(f"pop({key!r})")

    def popitem(self) -> Any:
        self._trip("popitem()")

    def setdefault(self, key: Any, default: Any = None) -> Any:
        self._trip(f"setdefault({key!r})")

    def update(self, *args: Any, **kwargs: Any) -> None:
        self._trip("update()")
