"""Declarative fault profiles for the chaos substrate.

A :class:`FaultPlan` names every fault class the injector knows how to
produce and its intensity (a probability, 0 disables the class).  Plans
are frozen and validated at construction like :class:`CfsConfig`, so a
typo'd rate fails fast instead of silently injecting nothing.

The zero plan is special: the injector guards every fault class behind
``rate > 0`` *before* drawing randomness, so a pipeline with a zero
plan installed is byte-identical to one with no injector at all (the
tier-1 smoke test and ``benchmarks/bench_chaos.py`` both assert this).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace as _dataclass_replace

__all__ = ["FaultPlan"]


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Per-class fault intensities (all probabilities, all 0 by default).

    Measurement faults (consulted per probe):

    * ``hop_loss`` — extra per-hop probability that a responsive hop's
      reply is dropped on top of the substrate's own loss model;
    * ``trace_truncation`` — per-trace probability that the output is
      cut short at a random hop (the prober gave up mid-path);
    * ``vp_outage`` — per-probe probability that the vantage point is
      transiently down (:class:`~repro.faults.errors.VantagePointOutage`);
    * ``lg_rate_limit`` — per-query probability a looking glass rejects
      the request (:class:`~repro.faults.errors.RateLimitExceeded`);
    * ``lg_timeout`` — per-query probability a looking glass hangs until
      timeout (:class:`~repro.faults.errors.QueryTimeout`).

    Dataset faults (applied once, to the PeeringDB snapshot):

    * ``netfac_missing`` — per-row probability a ``netfac`` row is lost;
    * ``netfac_stale`` — per-AS probability of gaining one stale,
      contradictory ``netfac`` row (a facility the AS left long ago);
    * ``ixfac_missing`` — per-row probability an ``ixfac`` row is lost.

    Alias-resolution faults:

    * ``alias_false_negative`` — probability a truly passing MIDAR pair
      is nevertheless rejected (congestion broke the probe train).

    Executor faults (consulted per shard attempt, inside forked
    workers only — see :class:`repro.exec.ExecFaultSpec`):

    * ``worker_crash`` — per-shard-attempt probability the worker dies
      mid-shard via ``os._exit`` (no unwinding, no result);
    * ``worker_hang`` — per-shard-attempt probability the worker stalls
      long enough to trip the supervisor's shard deadline.

    Service faults (consulted per epoch / publish attempt by the map
    service's :class:`repro.serve.ServiceSupervisor`):

    * ``epoch_fail`` — per-epoch-attempt probability that one streamed
      ingest epoch fails before any probe executes (the measurement
      backend refused the whole batch);
    * ``snapshot_corrupt`` — per-publish-attempt probability that the
      durable snapshot write is torn (the bytes land atomically but the
      payload no longer matches its content fingerprint).

    Like the executor faults, both are keyed per attempt (not drawn
    from a shared sequential stream), so retries re-roll independently
    and neither class perturbs what the probes observe — a plan with
    only service faults still converges to the fault-free fingerprint.
    """

    hop_loss: float = 0.0
    trace_truncation: float = 0.0
    vp_outage: float = 0.0
    lg_rate_limit: float = 0.0
    lg_timeout: float = 0.0
    netfac_missing: float = 0.0
    netfac_stale: float = 0.0
    ixfac_missing: float = 0.0
    alias_false_negative: float = 0.0
    worker_crash: float = 0.0
    worker_hang: float = 0.0
    epoch_fail: float = 0.0
    snapshot_corrupt: float = 0.0

    def __post_init__(self) -> None:
        for spec in fields(self):
            value = getattr(self, spec.name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"fault rate {spec.name}={value!r} must be in [0, 1]"
                )

    # ------------------------------------------------------------------

    @classmethod
    def zero(cls) -> "FaultPlan":
        """The no-op plan: injection installed but every class disabled."""
        return cls()

    @classmethod
    def moderate(cls) -> "FaultPlan":
        """The documented moderate chaos profile.

        10% extra hop loss, 5% vantage-point outages, 5% stale and 5%
        missing netfac rows, plus light looking-glass misbehaviour and
        alias false negatives — the profile the acceptance criteria and
        ``repro chaos`` default to.  The worker rates look high next to
        the probe rates, but they are per *shard attempt* and parallel
        maps carry at most ``workers`` shards per call, so at small
        scale anything much lower never fires at all.  The service
        rates are sized the same way: a soak run streams a handful of
        epochs, so per-attempt rates much below 0.3 rarely exhaust a
        retry budget within one run.
        """
        return cls(
            hop_loss=0.10,
            trace_truncation=0.03,
            vp_outage=0.05,
            lg_rate_limit=0.05,
            lg_timeout=0.05,
            netfac_missing=0.05,
            netfac_stale=0.05,
            ixfac_missing=0.05,
            alias_false_negative=0.03,
            worker_crash=0.15,
            worker_hang=0.05,
            epoch_fail=0.30,
            snapshot_corrupt=0.30,
        )

    def scaled(self, intensity: float) -> "FaultPlan":
        """Every rate multiplied by ``intensity`` (clamped to [0, 1]).

        The chaos sweep scales one base profile up and down so a single
        knob spans "clean" to "hostile".
        """
        if intensity < 0:
            raise ValueError("intensity must not be negative")
        return FaultPlan(
            **{
                spec.name: min(1.0, getattr(self, spec.name) * intensity)
                for spec in fields(self)
            }
        )

    def replace(self, **overrides) -> "FaultPlan":
        """A copy with ``overrides`` applied (and re-validated)."""
        return _dataclass_replace(self, **overrides)

    # ------------------------------------------------------------------

    @property
    def is_zero(self) -> bool:
        """True when every fault class is disabled."""
        return all(getattr(self, spec.name) == 0.0 for spec in fields(self))

    @property
    def perturbs_datasets(self) -> bool:
        """True when any dataset-level (PeeringDB) fault is enabled."""
        return (
            self.netfac_missing > 0
            or self.netfac_stale > 0
            or self.ixfac_missing > 0
        )

    @property
    def perturbs_probes(self) -> bool:
        """True when any per-probe measurement fault is enabled.

        Probe faults consume shared sequential RNG state inside the
        campaign loop, so the driver must stay serial while one is
        active; executor faults (``worker_crash``/``worker_hang``) are
        keyed per shard attempt and explicitly do *not* force serial —
        exercising the supervisor under parallelism is their point.
        """
        return (
            self.hop_loss > 0
            or self.trace_truncation > 0
            or self.vp_outage > 0
            or self.lg_rate_limit > 0
            or self.lg_timeout > 0
        )

    @property
    def perturbs_workers(self) -> bool:
        """True when any executor-level fault is enabled."""
        return self.worker_crash > 0 or self.worker_hang > 0

    @property
    def perturbs_serve(self) -> bool:
        """True when any service-layer (epoch/publish) fault is enabled.

        Service faults never touch the probes, so they don't force the
        campaign serial the way ``perturbs_probes`` does — but they do
        disable the map service's mid-stream checkpoint/resume, because
        quarantined epochs make arrival order diverge from plan order
        and the stream stage's boundary bookkeeping assumes they match.
        """
        return self.epoch_fail > 0 or self.snapshot_corrupt > 0

    def as_dict(self) -> dict[str, float]:
        """JSON-ready rendering of every rate."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}
