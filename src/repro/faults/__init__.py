"""Fault injection and chaos harness for the measurement pipeline.

The real pipeline survives lossy traceroutes, flapping vantage points,
rate-limited looking glasses, and stale PeeringDB rows; this subpackage
makes those failure modes reproducible over the synthetic substrate:

* :class:`FaultPlan` — declarative, validated fault intensities
  (all zero by default);
* :class:`FaultInjector` — the seeded perturbation engine wired through
  the traceroute engine, live platforms, PeeringDB snapshot, and MIDAR;
* :mod:`repro.faults.errors` — the typed measurement faults the
  resilience layer retries and quarantines;
* :mod:`repro.faults.chaos` — the sweep harness behind ``repro chaos``
  and ``benchmarks/bench_chaos.py`` (imported lazily by the CLI; not
  re-exported here to keep this package import-light).

Install a plan with ``PipelineConfig(faults=FaultPlan.moderate())`` or
``repro.api.run_pipeline(faults=...)``; a zero plan is byte-identical
to running with no injector at all.
"""

from .errors import (
    EpochIngestFault,
    MeasurementFault,
    QueryTimeout,
    RateLimitExceeded,
    VantagePointOutage,
)
from .injector import FaultInjector
from .plan import FaultPlan

__all__ = [
    "EpochIngestFault",
    "FaultInjector",
    "FaultPlan",
    "MeasurementFault",
    "QueryTimeout",
    "RateLimitExceeded",
    "VantagePointOutage",
]
