"""Seeded, config-driven fault injection over the measurement substrate.

One :class:`FaultInjector` is wired through the whole stack at
environment-build time (``PipelineConfig(faults=...)``):

* the traceroute engine routes every finished trace through
  :meth:`perturb_trace` (extra hop loss, truncation);
* the live platforms consult :meth:`check_vp` /
  :meth:`check_looking_glass` before issuing a probe, which raise the
  :mod:`repro.faults.errors` exceptions the resilience layer retries;
* the PeeringDB snapshot passes through :meth:`corrupt_peeringdb`
  (missing / stale / contradictory rows) before the facility database
  is assembled;
* the MIDAR front-end asks :meth:`alias_false_negative` whether a
  passing pair should be dropped anyway.

Ground truth is never modified — only observations of it.

Determinism: every fault class draws from its own :class:`random.Random`
stream seeded from ``(seed, class name)``, and **no stream is touched
while its rate is zero**.  A zero :class:`FaultPlan` therefore yields a
pipeline byte-identical to one with no injector installed, which is the
property the tier-1 chaos smoke test pins down.
"""

from __future__ import annotations

from dataclasses import replace as _dc_replace
from random import Random
from typing import TYPE_CHECKING

from ..exec import substream
from ..obs import Instrumentation
from ..sanitize import assert_rng
from .errors import (
    EpochIngestFault,
    QueryTimeout,
    RateLimitExceeded,
    VantagePointOutage,
)
from .plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..datasets.peeringdb import PeeringDBSnapshot
    from ..measurement.platforms import VantagePoint
    from ..measurement.traceroute import Traceroute

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies a :class:`FaultPlan` to the substrate, deterministically."""

    def __init__(
        self,
        plan: FaultPlan | None = None,
        seed: int = 0,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.plan = plan or FaultPlan.zero()
        self.seed = seed
        #: Per-run observability hook; ``run_pipeline`` swaps in the
        #: run's instrumentation so fault counters land on
        #: ``CfsResult.metrics``.
        self.instrumentation = instrumentation or Instrumentation()
        #: Lifetime fault totals, independent of instrumentation swaps.
        self.counts: dict[str, int] = {}
        self._rngs: dict[str, Random] = {}

    def _rng(self, name: str) -> Random:
        """The dedicated random stream of one fault class.

        Streams are lazily created and never drawn from while the class
        is disabled, so enabling one class cannot shift another's draws.
        """
        rng = self._rngs.get(name)
        if rng is None:
            rng = substream("faults", self.seed, name)
            self._rngs[name] = rng
        return assert_rng(rng, f"faults.{name}")

    def _count(self, name: str, n: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + n
        self.instrumentation.count(name, n)

    # ------------------------------------------------------------------
    # Traceroute perturbation (wrapped around TracerouteEngine)
    # ------------------------------------------------------------------

    def perturb_trace(self, trace: "Traceroute") -> "Traceroute":
        """Apply per-hop loss and truncation to one finished traceroute.

        Ground-truth ``router_id`` annotations are preserved on lost
        hops (inference never reads them; scoring may).
        """
        plan = self.plan
        if not trace.hops:
            return trace
        hops = trace.hops
        reached = trace.reached
        changed = False
        if plan.trace_truncation > 0:
            rng = self._rng("trace_truncation")
            if rng.random() < plan.trace_truncation:
                hops = hops[: rng.randrange(len(hops))]
                reached = False
                changed = True
                self._count("fault.trace_truncated")
        if plan.hop_loss > 0 and hops:
            rng = self._rng("hop_loss")
            lossy = list(hops)
            for index, hop in enumerate(lossy):
                if hop.address is None or rng.random() >= plan.hop_loss:
                    continue
                lossy[index] = _dc_replace(hop, address=None, rtt_ms=None)
                changed = True
                self._count("fault.hop_lost")
                if index == len(lossy) - 1:
                    reached = False
            hops = tuple(lossy)
        if not changed:
            return trace
        return _dc_replace(trace, hops=tuple(hops), reached=reached)

    # ------------------------------------------------------------------
    # Live-platform faults (consulted per probe)
    # ------------------------------------------------------------------

    def check_vp(self, vp: "VantagePoint") -> None:
        """Raise :class:`VantagePointOutage` if ``vp`` is down right now.

        Outages are transient: the next probe re-rolls, so a retry after
        backoff can succeed — unless the circuit breaker quarantined the
        vantage point first.
        """
        if self.plan.vp_outage <= 0:
            return
        if self._rng("vp_outage").random() < self.plan.vp_outage:
            self._count("fault.vp_outage")
            self.instrumentation.emit(
                "fault.vp_outage", vp=vp.vp_id, platform=vp.platform
            )
            raise VantagePointOutage(f"vantage point {vp.vp_id} is down")

    def check_looking_glass(self, asn: int) -> None:
        """Raise a rate-limit rejection or timeout for one LG query."""
        plan = self.plan
        if plan.lg_timeout > 0 and self._rng("lg_timeout").random() < plan.lg_timeout:
            self._count("fault.lg_timeout")
            self.instrumentation.emit("fault.lg_timeout", asn=asn)
            raise QueryTimeout(f"looking glass of AS{asn} timed out")
        if (
            plan.lg_rate_limit > 0
            and self._rng("lg_rate_limit").random() < plan.lg_rate_limit
        ):
            self._count("fault.lg_rate_limit")
            self.instrumentation.emit("fault.lg_rate_limit", asn=asn)
            raise RateLimitExceeded(f"looking glass of AS{asn} rate-limited the query")

    # ------------------------------------------------------------------
    # Service faults (consulted by the map service's supervisor)
    # ------------------------------------------------------------------
    #
    # Unlike the probe faults above, these draw from a *fresh* keyed
    # Random per (unit, attempt) — the ``ExecFaultSpec`` idiom — instead
    # of a shared sequential stream.  Retries re-roll independently, and
    # a resumed or partially quarantined stream sees exactly the same
    # draws as an uninterrupted one.

    def check_epoch(self, epoch: int, attempt: int) -> None:
        """Raise :class:`EpochIngestFault` if this epoch attempt fails.

        Consulted *before* any probe of the epoch executes, so the
        failure never leaves half an epoch's worth of substrate
        mutations behind and a retry is safe.
        """
        rate = self.plan.epoch_fail
        if rate <= 0:
            return
        rng = substream("faults", self.seed, "epoch_fail", epoch, attempt)
        if rng.random() < rate:
            self._count("fault.epoch_fail")
            raise EpochIngestFault(
                f"epoch {epoch} ingest failed (attempt {attempt})"
            )

    def corrupt_snapshot_payload(
        self, payload: dict, *, stage: str, attempt: int
    ) -> dict:
        """Possibly return a torn copy of a snapshot publication payload.

        Simulates a durable write whose bytes land atomically but no
        longer match the snapshot's content fingerprint (so the store's
        file-level checksum — computed over the torn bytes — passes,
        and only the publish-time fingerprint re-verification catches
        it).  With ``snapshot_corrupt`` zero the payload is returned
        unchanged, no randomness consumed.
        """
        rate = self.plan.snapshot_corrupt
        if rate <= 0:
            return payload
        rng = substream("faults", self.seed, "snapshot_corrupt", stage, attempt)
        if rng.random() >= rate:
            return payload
        self._count("fault.snapshot_corrupt")
        torn = dict(payload)
        recorded = str(torn.get("fingerprint", ""))
        torn["fingerprint"] = recorded[::-1] if recorded else "torn"
        return torn

    # ------------------------------------------------------------------
    # Alias-resolution faults
    # ------------------------------------------------------------------

    def alias_false_negative(self) -> bool:
        """True when a passing MIDAR pair should be rejected anyway."""
        if self.plan.alias_false_negative <= 0:
            return False
        if self._rng("alias_false_negative").random() < self.plan.alias_false_negative:
            self._count("fault.alias_false_negative")
            return True
        return False

    # ------------------------------------------------------------------
    # Dataset faults (applied once to the PeeringDB snapshot)
    # ------------------------------------------------------------------

    def corrupt_peeringdb(self, snapshot: "PeeringDBSnapshot") -> "PeeringDBSnapshot":
        """A copy of ``snapshot`` with rows dropped and stale rows added.

        * ``netfac_missing`` — each AS-at-facility row independently lost;
        * ``netfac_stale`` — per AS, one contradictory row pointing at a
          facility the snapshot does not associate with it (the operator
          left the building years ago; the record lingers);
        * ``ixfac_missing`` — each IXP-at-facility row independently lost.

        With all three rates zero the snapshot is returned unchanged
        (same object, no randomness consumed).
        """
        plan = self.plan
        if not plan.perturbs_datasets:
            return snapshot
        from ..datasets.peeringdb import PdbNetFacRow

        netfac = list(snapshot.netfac)
        if plan.netfac_missing > 0:
            rng = self._rng("netfac_missing")
            kept = [row for row in netfac if rng.random() >= plan.netfac_missing]
            self._count("fault.netfac_dropped", len(netfac) - len(kept))
            netfac = kept
        if plan.netfac_stale > 0:
            rng = self._rng("netfac_stale")
            present: dict[int, set[int]] = {}
            for row in netfac:
                present.setdefault(row.asn, set()).add(row.facility_id)
            all_facilities = sorted(
                row.facility_id for row in snapshot.facilities
            )
            for asn in sorted(present):
                if rng.random() >= plan.netfac_stale:
                    continue
                foreign = [
                    facility_id
                    for facility_id in all_facilities
                    if facility_id not in present[asn]
                ]
                if not foreign:
                    continue
                stale = rng.choice(foreign)
                netfac.append(PdbNetFacRow(asn=asn, facility_id=stale))
                self._count("fault.netfac_stale")
        ixfac = snapshot.ixfac
        if plan.ixfac_missing > 0:
            rng = self._rng("ixfac_missing")
            kept_ixfac = [
                row for row in ixfac if rng.random() >= plan.ixfac_missing
            ]
            self._count("fault.ixfac_dropped", len(ixfac) - len(kept_ixfac))
            ixfac = kept_ixfac
        return snapshot.replace_rows(netfac=netfac, ixfac=list(ixfac))
