"""Chaos sweeps: accuracy versus fault intensity.

The harness behind ``repro chaos`` and ``benchmarks/bench_chaos.py``:
scale one base :class:`FaultPlan` across a range of intensities, run the
full pipeline at each point (degraded-mode CFS on, so the loop survives
the corrupted corpus), and report how resolution and accuracy degrade —
the robustness analogue of the paper's Figure-8 dataset-degradation
sweep.

Imports of :mod:`repro.api` happen lazily inside the functions: the
:mod:`repro.faults` package sits *below* the measurement and core layers
in the import graph, and must stay importable from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .plan import FaultPlan

__all__ = ["ChaosPoint", "ChaosReport", "comparable_export", "run_chaos"]

#: Intensities swept by default: clean baseline to full moderate profile.
DEFAULT_INTENSITIES = (0.0, 0.25, 0.5, 1.0)


def comparable_export(environment, result) -> dict:
    """The run's export minus fields legitimate runs may differ in.

    Drops ``metrics`` (wall-clock timings) — everything else must be
    byte-identical between a run with a zero fault plan and a run with
    no injector installed.
    """
    from ..export import export_result

    exported = export_result(result, environment.facility_db)
    exported.pop("metrics", None)
    return exported


@dataclass(frozen=True, slots=True)
class ChaosPoint:
    """One pipeline run at one fault intensity."""

    intensity: float
    completed: bool
    interfaces: int
    resolved_fraction: float
    facility_accuracy: float
    city_accuracy: float
    #: Resilience activity observed during the run.
    retries: int
    quarantined: int
    probe_faults: int
    faults_injected: int
    degraded_widenings: int
    #: Executor-supervisor activity (worker_crash / worker_hang faults).
    shard_retries: int = 0
    shard_quarantines: int = 0
    pool_rebuilds: int = 0

    def as_dict(self) -> dict:
        """JSON-ready rendering."""
        return {
            "intensity": self.intensity,
            "completed": self.completed,
            "interfaces": self.interfaces,
            "resolved_fraction": self.resolved_fraction,
            "facility_accuracy": self.facility_accuracy,
            "city_accuracy": self.city_accuracy,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "probe_faults": self.probe_faults,
            "faults_injected": self.faults_injected,
            "degraded_widenings": self.degraded_widenings,
            "shard_retries": self.shard_retries,
            "shard_quarantines": self.shard_quarantines,
            "pool_rebuilds": self.pool_rebuilds,
        }


@dataclass(frozen=True, slots=True)
class ChaosReport:
    """A full sweep: accuracy versus fault intensity."""

    scale: str
    seed: int
    profile: dict[str, float]
    points: tuple[ChaosPoint, ...] = field(default_factory=tuple)

    def as_dict(self) -> dict:
        """JSON-ready rendering of the whole sweep."""
        return {
            "schema": "repro/chaos-report/1",
            "scale": self.scale,
            "seed": self.seed,
            "profile": self.profile,
            "points": [point.as_dict() for point in self.points],
        }

    def format(self) -> str:
        """Human-readable sweep table."""
        lines = [
            f"chaos sweep  scale={self.scale}  seed={self.seed}",
            f"{'intensity':>9}  {'resolved':>8}  {'fac-acc':>7}  "
            f"{'city-acc':>8}  {'faults':>6}  {'retries':>7}  "
            f"{'quarant':>7}  {'widened':>7}  {'shard-r':>7}  "
            f"{'shard-q':>7}  {'rebuilt':>7}",
        ]
        for p in self.points:
            lines.append(
                f"{p.intensity:>9.2f}  {p.resolved_fraction:>8.3f}  "
                f"{p.facility_accuracy:>7.3f}  {p.city_accuracy:>8.3f}  "
                f"{p.faults_injected:>6d}  {p.retries:>7d}  "
                f"{p.quarantined:>7d}  {p.degraded_widenings:>7d}  "
                f"{p.shard_retries:>7d}  {p.shard_quarantines:>7d}  "
                f"{p.pool_rebuilds:>7d}"
            )
        return "\n".join(lines)


def _counter(metrics, name: str) -> int:
    if metrics is None:
        return 0
    return int(metrics.counters.get(name, 0))


def _fault_total(metrics) -> int:
    if metrics is None:
        return 0
    return int(
        sum(
            value
            for name, value in metrics.counters.items()
            if name.startswith("fault.")
        )
    )


def run_chaos(
    seed: int = 0,
    scale: str = "small",
    intensities: tuple[float, ...] = DEFAULT_INTENSITIES,
    base: FaultPlan | None = None,
    degraded: bool = True,
    workers: int = 1,
    shard_timeout_s: float | None = None,
) -> ChaosReport:
    """Sweep fault intensity and measure inference degradation.

    Each point rebuilds the environment from the same seed with
    ``base.scaled(intensity)`` installed (``base`` defaults to
    :meth:`FaultPlan.moderate`), runs the full pipeline, and scores the
    result against ground truth.  ``degraded`` turns on degraded-mode
    CFS uniformly across the sweep so points differ only in intensity.

    With ``workers > 1`` the plan's ``worker_crash`` / ``worker_hang``
    rates exercise the executor supervisor; each point records its
    shard retries, quarantines and pool rebuilds.  ``shard_timeout_s``
    sets the supervisor's per-shard deadline (required for hang faults
    to resolve quickly).
    """
    import dataclasses

    from .. import api
    from ..core.pipeline import run_pipeline
    from ..obs import Instrumentation
    from ..validation.metrics import score_interfaces

    base = base or FaultPlan.moderate()
    points: list[ChaosPoint] = []
    for intensity in intensities:
        config = api.PipelineConfig.for_scale(scale, seed=seed)
        plan = base.scaled(intensity)
        config = dataclasses.replace(
            config,
            faults=plan,
            cfs=config.cfs.replace(degraded_mode=degraded),
            workers=workers,
            shard_timeout_s=shard_timeout_s,
        )
        obs = Instrumentation()
        run = run_pipeline(config, instrumentation=obs)
        result = run.cfs_result
        report = score_interfaces(run.topology, result)
        metrics = result.metrics
        injector = run.environment.fault_injector
        injected = _fault_total(metrics)
        if injector is not None:
            # Build-time dataset faults are counted on the injector
            # itself (they land before the run's instrumentation).
            injected = sum(
                value
                for name, value in injector.counts.items()
                if name.startswith("fault.")
            )
        points.append(
            ChaosPoint(
                intensity=intensity,
                completed=True,
                interfaces=len(result.interfaces),
                resolved_fraction=result.resolved_fraction(),
                facility_accuracy=report.facility_accuracy,
                city_accuracy=report.city_accuracy,
                retries=_counter(metrics, "campaign.retries"),
                quarantined=_counter(metrics, "campaign.vp_quarantined"),
                probe_faults=_counter(metrics, "campaign.probe_faults"),
                faults_injected=injected,
                degraded_widenings=_counter(metrics, "cfs.degraded_widenings"),
                shard_retries=_counter(metrics, "exec.shard.retry"),
                shard_quarantines=_counter(metrics, "exec.shard.quarantine"),
                pool_rebuilds=_counter(metrics, "exec.pool.rebuild"),
            )
        )
    return ChaosReport(
        scale=scale,
        seed=seed,
        profile=base.as_dict(),
        points=tuple(points),
    )
