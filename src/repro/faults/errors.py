"""Measurement-fault exceptions raised by the fault-injection substrate.

Real campaigns fail in kind, not just in degree: a RIPE Atlas probe
disappears mid-campaign, a looking glass answers ``rate limit
exceeded``, a query hangs until the prober's timeout.  The resilience
layer (:mod:`repro.measurement.resilience`) needs to tell these apart —
a rate-limited looking glass is worth retrying after backoff, a dead
vantage point is worth quarantining — so each failure mode is its own
exception class with a stable ``kind`` tag used in counter names
(``campaign.fault.<kind>``).
"""

from __future__ import annotations

__all__ = [
    "MeasurementFault",
    "VantagePointOutage",
    "RateLimitExceeded",
    "QueryTimeout",
    "EpochIngestFault",
]


class MeasurementFault(Exception):
    """Base class for injected measurement failures.

    ``kind`` is a stable short tag used in observability counter names.
    """

    kind = "fault"


class VantagePointOutage(MeasurementFault):
    """A vantage point is transiently unreachable (probe lost its host)."""

    kind = "vp-outage"


class RateLimitExceeded(MeasurementFault):
    """A looking glass rejected the query outright (too many requests)."""

    kind = "rate-limit"


class QueryTimeout(MeasurementFault):
    """A query hung until the prober's timeout expired."""

    kind = "timeout"


class EpochIngestFault(MeasurementFault):
    """A whole streamed ingest epoch failed before any probe ran.

    Raised at the epoch boundary by :meth:`FaultInjector.check_epoch`,
    so a retry never re-executes probes that already mutated substrate
    state.  The map service's supervisor retries the epoch with a
    re-rolled draw and quarantines it once the budget is exhausted.
    """

    kind = "epoch-fail"
