"""NOC-website colocation listings.

Section 3.1.1: operators document their peering facilities on their
Network Operations Center web pages; the paper scraped these for ASes
whose PeeringDB records looked incomplete and recovered 1,424 missing
AS-to-facility links (Figure 2).  Notably, the ASes with missing
PeeringDB data often provided *detailed* NOC pages — they were not
hiding, just not maintaining PeeringDB.

We model one page per AS flagged ``has_noc_page``: a near-complete
facility list rendered as (facility name, raw city) pairs, which the
assembly layer resolves against the facility table.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from ..topology.topology import Topology

__all__ = ["NocPage", "NocWebsites", "NocConfig"]


@dataclass(frozen=True, slots=True)
class NocConfig:
    """Scraping-fidelity knobs."""

    #: Probability each ground-truth presence appears on the page.
    listing_coverage: float = 0.97


@dataclass(frozen=True, slots=True)
class NocPage:
    """One operator's scraped colocation page."""

    asn: int
    #: (facility_id, facility name, raw city) tuples as scraped.
    listings: tuple[tuple[int, str, str], ...]

    def facility_ids(self) -> set[int]:
        """Facility ids scraped from the page listings."""
        return {facility_id for facility_id, _, _ in self.listings}


class NocWebsites:
    """The scraped corpus of NOC pages."""

    def __init__(self, pages: dict[int, NocPage]) -> None:
        self._pages = pages

    @classmethod
    def build(
        cls,
        topology: Topology,
        config: NocConfig | None = None,
        seed: int = 0,
    ) -> "NocWebsites":
        """Scrape a page for every AS that publishes one."""
        config = config or NocConfig()
        rng = Random(seed)
        pages: dict[int, NocPage] = {}
        for record in topology.ases.values():
            if not record.has_noc_page:
                continue
            listings: list[tuple[int, str, str]] = []
            for facility_id in sorted(record.facility_ids):
                if rng.random() >= config.listing_coverage:
                    continue
                facility = topology.facilities[facility_id]
                listings.append((facility_id, facility.name, facility.metro))
            pages[record.asn] = NocPage(asn=record.asn, listings=tuple(listings))
        return cls(pages)

    def page_for(self, asn: int) -> NocPage | None:
        """The scraped page of one AS, if it publishes one."""
        return self._pages.get(asn)

    def asns_with_pages(self) -> set[int]:
        """ASNs whose NOC page was scraped."""
        return set(self._pages)

    def __len__(self) -> int:
        return len(self._pages)
