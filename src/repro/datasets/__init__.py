"""Noisy public-data views over the generated ground truth.

Every dataset the paper assembles in Section 3.1 is simulated here with
its real-world failure modes: PeeringDB (incomplete, inconsistently
spelled), NOC websites (complete but sparse coverage), IXP websites /
PCH / consortia (the activeness filter inputs plus AMS-IX-grade member
detail), Team Cymru IP-to-ASN, reverse DNS, and IP geolocation.
"""

from .cymru import CymruService
from .dnsnames import DnsConfig, DnsZone, metro_airport_code, metro_clli_code
from .geolocation import GeoConfig, GeoDatabase, GeoRecord
from .ixp_sources import (
    ConsortiumRecord,
    IxpDataSources,
    IxpSourcesConfig,
    IxpWebsite,
    MemberDetail,
    PchRecord,
)
from .noc import NocConfig, NocPage, NocWebsites
from .normalize import LocationNormalizer
from .peeringdb import (
    MaintenanceQuality,
    PdbFacilityRow,
    PdbIxFacRow,
    PdbIxLanRow,
    PdbNetFacRow,
    PdbNetIxLanRow,
    PeeringDBConfig,
    PeeringDBSnapshot,
)

__all__ = [
    "ConsortiumRecord",
    "CymruService",
    "DnsConfig",
    "DnsZone",
    "GeoConfig",
    "GeoDatabase",
    "GeoRecord",
    "IxpDataSources",
    "IxpSourcesConfig",
    "IxpWebsite",
    "LocationNormalizer",
    "MaintenanceQuality",
    "MemberDetail",
    "metro_airport_code",
    "metro_clli_code",
    "NocConfig",
    "NocPage",
    "NocWebsites",
    "PchRecord",
    "PdbFacilityRow",
    "PdbIxFacRow",
    "PdbIxLanRow",
    "PdbNetFacRow",
    "PdbNetIxLanRow",
    "PeeringDBConfig",
    "PeeringDBSnapshot",
]
