"""IXP information sources: websites, PCH, and the IXP consortia.

Section 3.1.2 assembles the IXP map from several partly overlapping
public sources: IXP websites, PeeringDB, Packet Clearing House (which
annotates inactive exchanges), and the regional consortia (Euro-IX,
Af-IX, LAC-IX, APIX).  An IXP is kept only when

* its peering-LAN address blocks are confirmed by **at least three**
  sources, and
* at least one active member is confirmed by **at least two** sources.

The paper ended with 368 exchanges this way.  A handful of large
exchanges (AMS-IX, NL-IX, LINX, France-IX, STH-IX) additionally publish
the exact member interface addresses and facilities — the richest
validation source of Section 6, and the ground truth for calibrating
the switch-proximity heuristic (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from ..topology.addressing import Prefix
from ..topology.topology import Topology

__all__ = [
    "IxpWebsite",
    "MemberDetail",
    "PchRecord",
    "ConsortiumRecord",
    "IxpSourcesConfig",
    "IxpDataSources",
]


@dataclass(frozen=True, slots=True)
class MemberDetail:
    """Per-member detail published by a 'detailed' IXP website."""

    asn: int
    address: int
    facility_id: int | None  # None for remote members
    is_remote: bool
    reseller_asn: int | None


@dataclass(frozen=True, slots=True)
class IxpWebsite:
    """What one exchange publishes about itself."""

    ixp_id: int
    name: str
    prefixes: tuple[Prefix, ...]
    facility_ids: tuple[int, ...]
    member_asns: tuple[int, ...]
    #: Only detailed websites (AMS-IX class) publish this.
    member_details: tuple[MemberDetail, ...] = ()

    @property
    def is_detailed(self) -> bool:
        """True when the website publishes per-member port detail."""
        return bool(self.member_details)


@dataclass(frozen=True, slots=True)
class PchRecord:
    """Packet Clearing House row; PCH marks inactive exchanges."""

    ixp_id: int
    prefixes: tuple[Prefix, ...]
    marked_inactive: bool


@dataclass(frozen=True, slots=True)
class ConsortiumRecord:
    """Regional consortium (Euro-IX style) affiliate row."""

    ixp_id: int
    prefixes: tuple[Prefix, ...]
    member_asns: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class IxpSourcesConfig:
    """Coverage knobs for each source."""

    #: Probability an active IXP publishes its own website data.
    website_prob: float = 0.97
    #: Probability an IXP website lists its partner facilities.
    website_facility_coverage: float = 0.95
    #: Per-member probability of appearing on the website member list.
    website_member_coverage: float = 0.95
    #: Share of the *largest* exchanges that publish per-member detail.
    detailed_website_count: int = 5
    #: PCH coverage of exchanges (active or not).
    pch_prob: float = 0.95
    #: Consortium affiliation probability for active exchanges.
    consortium_prob: float = 0.80
    #: Per-member probability in consortium databases.
    consortium_member_coverage: float = 0.80


class IxpDataSources:
    """All IXP sources plus the Section 3.1.2 activeness filter."""

    def __init__(
        self,
        websites: dict[int, IxpWebsite],
        pch: dict[int, PchRecord],
        consortium: dict[int, ConsortiumRecord],
        pdb_prefixes: dict[int, list[Prefix]],
        pdb_members: dict[int, set[int]],
    ) -> None:
        self.websites = websites
        self.pch = pch
        self.consortium = consortium
        self.pdb_prefixes = pdb_prefixes
        self.pdb_members = pdb_members

    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        topology: Topology,
        pdb_prefixes: dict[int, list[Prefix]],
        pdb_members: dict[int, set[int]],
        config: IxpSourcesConfig | None = None,
        seed: int = 0,
    ) -> "IxpDataSources":
        """Generate every IXP source's view from ground truth."""
        config = config or IxpSourcesConfig()
        rng = Random(seed)
        websites: dict[int, IxpWebsite] = {}
        pch: dict[int, PchRecord] = {}
        consortium: dict[int, ConsortiumRecord] = {}

        # The biggest active exchanges publish AMS-IX-grade detail.
        by_size = sorted(
            (ixp for ixp in topology.ixps.values() if ixp.active),
            key=lambda ixp: -len(ixp.member_ports),
        )
        detailed_ids = {
            ixp.ixp_id for ixp in by_size[: config.detailed_website_count]
        }

        for ixp in topology.ixps.values():
            prefixes = tuple(ixp.peering_lans)
            if rng.random() < config.pch_prob:
                pch[ixp.ixp_id] = PchRecord(
                    ixp_id=ixp.ixp_id,
                    prefixes=prefixes,
                    marked_inactive=not ixp.active,
                )
            if not ixp.active:
                continue  # dead exchanges publish nothing themselves
            if rng.random() < config.website_prob:
                facility_ids = tuple(
                    fid
                    for fid in sorted(ixp.facility_ids)
                    if rng.random() < config.website_facility_coverage
                )
                member_asns = tuple(
                    asn
                    for asn in sorted(ixp.member_ports)
                    if rng.random() < config.website_member_coverage
                )
                details: tuple[MemberDetail, ...] = ()
                if ixp.ixp_id in detailed_ids:
                    details = tuple(
                        MemberDetail(
                            asn=port.asn,
                            address=port.address,
                            facility_id=port.facility_id,
                            is_remote=port.is_remote,
                            reseller_asn=port.reseller_asn,
                        )
                        for _, ports in sorted(ixp.member_ports.items())
                        for port in ports
                    )
                websites[ixp.ixp_id] = IxpWebsite(
                    ixp_id=ixp.ixp_id,
                    name=ixp.name,
                    prefixes=prefixes,
                    facility_ids=facility_ids,
                    member_asns=member_asns,
                    member_details=details,
                )
            if rng.random() < config.consortium_prob:
                consortium[ixp.ixp_id] = ConsortiumRecord(
                    ixp_id=ixp.ixp_id,
                    prefixes=prefixes,
                    member_asns=tuple(
                        asn
                        for asn in sorted(ixp.member_ports)
                        if rng.random() < config.consortium_member_coverage
                    ),
                )
        return cls(websites, pch, consortium, pdb_prefixes, pdb_members)

    # ------------------------------------------------------------------
    # The Section 3.1.2 filter
    # ------------------------------------------------------------------

    def prefix_confirmations(self, ixp_id: int) -> int:
        """Number of sources confirming the exchange's address blocks."""
        count = 0
        if self.pdb_prefixes.get(ixp_id):
            count += 1
        website = self.websites.get(ixp_id)
        if website is not None and website.prefixes:
            count += 1
        pch = self.pch.get(ixp_id)
        if pch is not None and pch.prefixes and not pch.marked_inactive:
            count += 1
        record = self.consortium.get(ixp_id)
        if record is not None and record.prefixes:
            count += 1
        return count

    def member_confirmations(self, ixp_id: int) -> dict[int, int]:
        """How many sources list each member ASN."""
        counts: dict[int, int] = {}
        for asn in sorted(self.pdb_members.get(ixp_id, set())):
            counts[asn] = counts.get(asn, 0) + 1
        website = self.websites.get(ixp_id)
        if website is not None:
            for asn in website.member_asns:
                counts[asn] = counts.get(asn, 0) + 1
        record = self.consortium.get(ixp_id)
        if record is not None:
            for asn in record.member_asns:
                counts[asn] = counts.get(asn, 0) + 1
        return counts

    def active_ixp_ids(self) -> set[int]:
        """Exchanges passing the paper's two-part activeness filter."""
        known = (
            set(self.pdb_prefixes)
            | set(self.websites)
            | set(self.pch)
            | set(self.consortium)
        )
        active: set[int] = set()
        for ixp_id in sorted(known):
            if self.prefix_confirmations(ixp_id) < 3:
                continue
            members = self.member_confirmations(ixp_id)
            if any(count >= 2 for count in members.values()):
                active.add(ixp_id)
        return active

    def confirmed_members(self, ixp_id: int) -> set[int]:
        """Members confirmed by at least two sources."""
        return {
            asn
            for asn, count in self.member_confirmations(ixp_id).items()
            if count >= 2
        }

    def detailed_websites(self) -> list[IxpWebsite]:
        """Websites with AMS-IX-grade member detail (validation data)."""
        return [w for w in self.websites.values() if w.is_detailed]
