"""Reverse-DNS hostname synthesis for router interfaces.

Hostnames matter twice in the paper:

* as the **baseline**: DRoP-style DNS geolocation (Section 5) parses
  airport codes, city names and CLLI codes out of hostnames — and
  resolves only ~32% of peering interfaces, because 29% have no PTR
  record at all and 55% of the rest encode no location;
* as a **validation source** (Section 6): a handful of operators embed
  the *facility* in hostnames (``x.y.rtr.thn.lon.z`` = Telehouse North,
  London) and confirmed their conventions to the authors.

Each operator uses one naming scheme (chosen at topology build time):

=============  ====================================================
``None``       no PTR records published
``opaque``     structural label only, no location information
``airport``    IATA code of the metro
``clli``       CLLI-style six-letter city code
``city``       full city name token
``facility``   facility short code *and* metro token (validation-grade)
=============  ====================================================

A small staleness probability keeps a hostname pointing at a previous
location, reproducing the misleading-DNS caveat of Section 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from ..topology.network import InterfaceKind
from ..topology.topology import Topology

__all__ = ["DnsZone", "DnsConfig", "metro_airport_code", "metro_clli_code"]


#: Curated IATA-style codes for catalogue metros; programmatic fallback
#: below covers the tail.
_AIRPORT_CODES = {
    "London": "lhr",
    "New York": "jfk",
    "Paris": "cdg",
    "Frankfurt": "fra",
    "Amsterdam": "ams",
    "San Jose": "sjc",
    "Moscow": "dme",
    "Los Angeles": "lax",
    "Stockholm": "arn",
    "Manchester": "man",
    "Miami": "mia",
    "Berlin": "ber",
    "Tokyo": "nrt",
    "Kiev": "kbp",
    "Sao Paulo": "gru",
    "Vienna": "vie",
    "Singapore": "sin",
    "Auckland": "akl",
    "Hong Kong": "hkg",
    "Melbourne": "mel",
    "Montreal": "yul",
    "Zurich": "zrh",
    "Prague": "prg",
    "Seattle": "sea",
    "Chicago": "ord",
    "Dallas": "dfw",
    "Hamburg": "ham",
    "Atlanta": "atl",
    "Bucharest": "otp",
    "Madrid": "mad",
    "Milan": "mxp",
    "Duesseldorf": "dus",
    "Sofia": "sof",
    "St. Petersburg": "led",
    "Ashburn": "iad",
    "Toronto": "yyz",
    "Sydney": "syd",
    "Dublin": "dub",
    "Warsaw": "waw",
    "Brussels": "bru",
    "Copenhagen": "cph",
    "Oslo": "osl",
    "Helsinki": "hel",
    "Lisbon": "lis",
    "Rome": "fco",
    "Seoul": "icn",
    "Osaka": "kix",
    "Mumbai": "bom",
    "Jakarta": "cgk",
    "Dubai": "dxb",
    "Johannesburg": "jnb",
    "Nairobi": "nbo",
    "Cape Town": "cpt",
    "Buenos Aires": "eze",
    "Santiago": "scl",
    "Mexico City": "mex",
    "Denver": "den",
    "Phoenix": "phx",
}


def metro_airport_code(metro: str) -> str:
    """IATA-style code for a metro (derived fallback for the tail)."""
    code = _AIRPORT_CODES.get(metro)
    if code is not None:
        return code
    compact = "".join(ch for ch in metro.lower() if ch.isalpha())
    return (compact[:3] or "xxx").ljust(3, "x")


def metro_clli_code(metro: str) -> str:
    """CLLI-style six-letter city code (e.g. ``nycmny`` for New York)."""
    compact = "".join(ch for ch in metro.lower() if ch.isalpha())
    return (compact[:6] or "xxxxxx").ljust(6, "x")


@dataclass(frozen=True, slots=True)
class DnsConfig:
    """Record-quality knobs."""

    #: Per-interface probability of a missing PTR even when the operator
    #: publishes a zone.
    missing_record_prob: float = 0.10
    #: Probability a record is stale and names the wrong location.
    stale_prob: float = 0.03


class DnsZone:
    """PTR records for every interface, per the owning operator's scheme.

    Addresses on IXP peering LANs resolve according to the scheme of the
    *member* operating the router (as in practice), and private
    point-to-point addresses resolve per the router operator — not the
    address-space owner — which is one of the hints Section 4.1 cannot
    rely on but validation can.
    """

    def __init__(
        self,
        topology: Topology,
        config: DnsConfig | None = None,
        seed: int = 0,
    ) -> None:
        self._topology = topology
        self.config = config or DnsConfig()
        self._rng = Random(seed)
        self._records: dict[int, str] = {}
        self._build()

    def _build(self) -> None:
        metros = sorted(
            {facility.metro for facility in self._topology.facilities.values()}
        )
        for address, interface in sorted(self._topology.interfaces.items()):
            router = self._topology.routers[interface.router_id]
            operator = self._topology.ases[router.asn]
            scheme = operator.dns_scheme
            if scheme is None:
                continue
            if self._rng.random() < self.config.missing_record_prob:
                continue
            facility = self._topology.facilities[router.facility_id]
            metro = facility.metro
            facility_code = facility.dns_code
            if self._rng.random() < self.config.stale_prob:
                # Stale record: names some other metro the operator uses.
                metro = self._rng.choice(metros)
                facility_code = "old"
            label = self._interface_label(interface.kind, router.hostname_label)
            domain = f"{operator.name.replace('_', '-')}.net"
            if scheme == "opaque":
                host = f"{label}.{domain}"
            elif scheme == "airport":
                host = f"{label}.{metro_airport_code(metro)}.{domain}"
            elif scheme == "clli":
                host = f"{label}.{metro_clli_code(metro)}.{domain}"
            elif scheme == "city":
                token = "".join(ch for ch in metro.lower() if ch.isalpha())
                host = f"{label}.{token}.{domain}"
            elif scheme == "facility":
                host = (
                    f"{label}.{facility_code}."
                    f"{metro_airport_code(metro)}.{domain}"
                )
            else:  # pragma: no cover - schemes are closed above
                continue
            self._records[address] = host

    @staticmethod
    def _interface_label(kind: InterfaceKind, router_label: str) -> str:
        prefix = {
            InterfaceKind.BACKBONE: "ae",
            InterfaceKind.IXP_LAN: "ix",
            InterfaceKind.PRIVATE_P2P: "pni",
            InterfaceKind.LOOPBACK: "lo",
            InterfaceKind.HOST: "host",
        }[kind]
        return f"{prefix}-{router_label}"

    # ------------------------------------------------------------------

    def ptr(self, address: int) -> str | None:
        """The PTR record for ``address``, or ``None``."""
        return self._records.get(address)

    def coverage(self) -> float:
        """Fraction of interfaces with a PTR record."""
        total = len(self._topology.interfaces)
        return len(self._records) / total if total else 0.0
