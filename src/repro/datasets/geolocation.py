"""IP geolocation database simulator — the paper's weakest baseline.

Section 7: "IP geolocation is known for its inaccuracy, and studies have
shown that it can be reliable only at the country or state level...  in
some cases, e.g. Google, all IP addresses of prefixes used for
interconnection will map to California."

The generated database reproduces that behaviour: lookups are by
*prefix* (databases store prefix-level rows), country accuracy is high,
city accuracy mediocre, and content-provider space collapses onto the
operator's headquarters metro regardless of where the routers actually
are.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from ..topology.asn import ASRole
from ..topology.topology import Topology

__all__ = ["GeoRecord", "GeoDatabase", "GeoConfig"]


@dataclass(frozen=True, slots=True)
class GeoRecord:
    """One database answer."""

    country: str
    metro: str


@dataclass(frozen=True, slots=True)
class GeoConfig:
    """Accuracy knobs (defaults follow the literature the paper cites)."""

    #: Probability the database names the correct country.
    country_accuracy: float = 0.95
    #: Probability the city is right, given the country is right.
    city_accuracy_given_country: float = 0.60


class GeoDatabase:
    """Prefix-granularity geolocation lookups."""

    def __init__(
        self,
        topology: Topology,
        config: GeoConfig | None = None,
        seed: int = 0,
    ) -> None:
        self._topology = topology
        self.config = config or GeoConfig()
        self._rng = Random(seed)
        self._by_aggregate: dict[int, GeoRecord] = {}
        self._metros = list(topology.metros.metros)
        self._build()

    def _build(self) -> None:
        for asn, record in sorted(self._topology.ases.items()):
            home = self._topology.metros.resolve(record.home_metro)
            if record.role is ASRole.CONTENT:
                # The Google pathology: everything maps to headquarters.
                self._by_aggregate[asn] = GeoRecord(home.country, home.name)
                continue
            answer_metro = home
            if self._rng.random() >= self.config.country_accuracy:
                answer_metro = self._rng.choice(self._metros)
            elif self._rng.random() >= self.config.city_accuracy_given_country:
                same_country = self._topology.metros.in_country(home.country)
                answer_metro = self._rng.choice(list(same_country) or [home])
            self._by_aggregate[asn] = GeoRecord(
                answer_metro.country, answer_metro.name
            )

    def lookup(self, address: int) -> GeoRecord | None:
        """Database answer for ``address`` (prefix-level, so all of an
        operator's space answers identically)."""
        origin = self._topology.announced_origin(address)
        if origin is None:
            return None
        return self._by_aggregate.get(origin)
