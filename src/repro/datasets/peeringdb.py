"""PeeringDB snapshot simulator.

PeeringDB (Section 3.1) is the bootstrap dataset for the AS-to-facility
and IXP-to-facility maps, and its failure modes shape the whole paper:

* **netfac** (AS-at-facility) links are maintained by volunteers; the
  paper's Figure 2 found 1,424 missing AS-to-facility links across 61 of
  152 checked ASes, with 4 ASes listing no facility at all;
* **ixfac** (IXP-at-facility) associations are missing for some IXPs
  even when the facilities themselves are recorded (JPNAP Tokyo I);
* city fields are free text with inconsistent spellings, which the
  normalisation layer must repair;
* records for long-gone exchanges linger (the active-IXP filter of
  Section 3.1.2 exists because of this).

The snapshot is generated from ground truth by *removing* and *mangling*
information according to a per-AS maintenance-quality model, so dataset
incompleteness is reproducible and tunable (Figure 8 sweeps it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from random import Random

from ..topology.addressing import Prefix
from ..topology.asn import ASRole
from ..topology.geo import GeoLocation
from ..topology.topology import Topology

__all__ = [
    "MaintenanceQuality",
    "PdbFacilityRow",
    "PdbNetFacRow",
    "PdbIxFacRow",
    "PdbIxLanRow",
    "PdbNetIxLanRow",
    "PeeringDBConfig",
    "PeeringDBSnapshot",
]


class MaintenanceQuality(enum.Enum):
    """How diligently an operator maintains its PeeringDB record."""

    #: Every facility presence is recorded.
    DILIGENT = "diligent"
    #: A sizeable fraction of netfac links is missing.
    LAZY = "lazy"
    #: The operator lists no facilities at all.
    ABSENT = "absent"


@dataclass(frozen=True, slots=True)
class PdbFacilityRow:
    """One ``fac`` record."""

    facility_id: int
    name: str
    city: str  # raw, possibly an alias spelling
    country: str
    location: GeoLocation


@dataclass(frozen=True, slots=True)
class PdbNetFacRow:
    """One ``netfac`` record: AS present at facility."""

    asn: int
    facility_id: int


@dataclass(frozen=True, slots=True)
class PdbIxFacRow:
    """One ``ixfac`` record: IXP partnered with facility."""

    ixp_id: int
    facility_id: int


@dataclass(frozen=True, slots=True)
class PdbIxLanRow:
    """One ``ixlan`` record: IXP peering-LAN prefix."""

    ixp_id: int
    name: str
    prefix: Prefix


@dataclass(frozen=True, slots=True)
class PdbNetIxLanRow:
    """One ``netixlan`` record: member port address at an IXP."""

    asn: int
    ixp_id: int
    address: int


@dataclass(frozen=True, slots=True)
class PeeringDBConfig:
    """Incompleteness knobs."""

    #: Share of ASes whose record is fully maintained.
    diligent_prob: float = 0.58
    #: Share of ASes with partially maintained records (the rest of the
    #: probability mass is ABSENT).
    lazy_prob: float = 0.36
    #: Fraction of netfac links a LAZY operator fails to record.
    lazy_dropout: float = 0.38
    #: Probability a LAZY operator still records at least one facility
    #: in each metro where it is present.  Operators advertise their
    #: *markets* reliably even when the per-building list is stale; this
    #: is why the paper's wrong inferences land in the right city.
    metro_anchor_prob: float = 0.85
    #: Probability an IXP's ixfac associations are entirely missing
    #: (the JPNAP case: facilities known, association absent).
    ixfac_missing_prob: float = 0.12
    #: Probability a single ixfac association is missing otherwise.
    ixfac_dropout: float = 0.08
    #: Probability a facility's city field uses an alias spelling.
    alias_city_prob: float = 0.30
    #: Probability a netixlan membership row is present.
    netixlan_coverage: float = 0.85


class PeeringDBSnapshot:
    """A generated PeeringDB dump."""

    def __init__(
        self,
        facilities: list[PdbFacilityRow],
        netfac: list[PdbNetFacRow],
        ixfac: list[PdbIxFacRow],
        ixlan: list[PdbIxLanRow],
        netixlan: list[PdbNetIxLanRow],
        quality: dict[int, MaintenanceQuality],
    ) -> None:
        self.facilities = facilities
        self.netfac = netfac
        self.ixfac = ixfac
        self.ixlan = ixlan
        self.netixlan = netixlan
        self.quality = quality
        self._fac_by_id = {row.facility_id: row for row in facilities}

    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        topology: Topology,
        config: PeeringDBConfig | None = None,
        seed: int = 0,
    ) -> "PeeringDBSnapshot":
        """Derive a snapshot from ground truth by injecting the paper's
        observed incompleteness patterns."""
        config = config or PeeringDBConfig()
        rng = Random(seed)

        facilities: list[PdbFacilityRow] = []
        for facility in topology.facilities.values():
            metro = topology.metros.resolve(facility.metro)
            city = facility.metro
            if metro.aliases and rng.random() < config.alias_city_prob:
                city = rng.choice(metro.aliases)
            facilities.append(
                PdbFacilityRow(
                    facility_id=facility.facility_id,
                    name=facility.name,
                    city=city,
                    country=facility.country,
                    location=facility.location,
                )
            )

        quality: dict[int, MaintenanceQuality] = {}
        netfac: list[PdbNetFacRow] = []
        for record in topology.ases.values():
            roll = rng.random()
            if roll < config.diligent_prob:
                quality[record.asn] = MaintenanceQuality.DILIGENT
            elif roll < config.diligent_prob + config.lazy_prob:
                quality[record.asn] = MaintenanceQuality.LAZY
            else:
                quality[record.asn] = MaintenanceQuality.ABSENT
            # Big well-known facilities operators keep current; CDNs are
            # diligent in practice because peering depends on it.
            if record.role is ASRole.CONTENT and quality[record.asn] is MaintenanceQuality.ABSENT:
                quality[record.asn] = MaintenanceQuality.LAZY
            q = quality[record.asn]
            if q is MaintenanceQuality.ABSENT:
                continue
            kept: set[int] = set()
            dropped_by_metro: dict[str, list[int]] = {}
            for facility_id in sorted(record.facility_ids):
                metro = topology.facilities[facility_id].metro
                if q is MaintenanceQuality.LAZY and rng.random() < config.lazy_dropout:
                    dropped_by_metro.setdefault(metro, []).append(facility_id)
                    continue
                kept.add(facility_id)
                dropped_by_metro.setdefault(metro, [])
            kept_metros = {topology.facilities[f].metro for f in kept}
            for metro, dropped in dropped_by_metro.items():
                if dropped and metro not in kept_metros:
                    if rng.random() < config.metro_anchor_prob:
                        kept.add(dropped[0])
            for facility_id in sorted(kept):
                netfac.append(PdbNetFacRow(asn=record.asn, facility_id=facility_id))

        ixfac: list[PdbIxFacRow] = []
        ixlan: list[PdbIxLanRow] = []
        netixlan: list[PdbNetIxLanRow] = []
        for ixp in topology.ixps.values():
            for lan in ixp.peering_lans:
                ixlan.append(PdbIxLanRow(ixp_id=ixp.ixp_id, name=ixp.name, prefix=lan))
            if rng.random() < config.ixfac_missing_prob:
                pass  # the JPNAP pattern: no ixfac rows at all
            else:
                for facility_id in sorted(ixp.facility_ids):
                    if rng.random() < config.ixfac_dropout:
                        continue
                    ixfac.append(PdbIxFacRow(ixp_id=ixp.ixp_id, facility_id=facility_id))
            for asn, ports in sorted(ixp.member_ports.items()):
                for port in ports:
                    if rng.random() < config.netixlan_coverage:
                        netixlan.append(
                            PdbNetIxLanRow(
                                asn=asn, ixp_id=ixp.ixp_id, address=port.address
                            )
                        )
        return cls(facilities, netfac, ixfac, ixlan, netixlan, quality)

    def replace_rows(
        self,
        *,
        netfac: list[PdbNetFacRow] | None = None,
        ixfac: list[PdbIxFacRow] | None = None,
    ) -> "PeeringDBSnapshot":
        """A copy of this snapshot with some tables swapped out.

        Used by the fault injector to corrupt association tables without
        mutating the snapshot the environment was built from.
        """
        return PeeringDBSnapshot(
            facilities=self.facilities,
            netfac=self.netfac if netfac is None else netfac,
            ixfac=self.ixfac if ixfac is None else ixfac,
            ixlan=self.ixlan,
            netixlan=self.netixlan,
            quality=self.quality,
        )

    # ------------------------------------------------------------------
    # Query helpers
    # ------------------------------------------------------------------

    def facility_row(self, facility_id: int) -> PdbFacilityRow | None:
        """The ``fac`` record for ``facility_id``, if present."""
        return self._fac_by_id.get(facility_id)

    def facilities_of_as(self, asn: int) -> set[int]:
        """netfac associations of one AS."""
        return {row.facility_id for row in self.netfac if row.asn == asn}

    def facilities_of_ixp(self, ixp_id: int) -> set[int]:
        """ixfac associations of one IXP."""
        return {row.facility_id for row in self.ixfac if row.ixp_id == ixp_id}

    def as_facility_map(self) -> dict[int, set[int]]:
        """All netfac associations keyed by ASN."""
        result: dict[int, set[int]] = {}
        for row in self.netfac:
            result.setdefault(row.asn, set()).add(row.facility_id)
        return result

    def ixp_facility_map(self) -> dict[int, set[int]]:
        """All ixfac associations keyed by IXP id."""
        result: dict[int, set[int]] = {}
        for row in self.ixfac:
            result.setdefault(row.ixp_id, set()).add(row.facility_id)
        return result

    def ixp_prefixes(self) -> dict[int, list[Prefix]]:
        """Peering-LAN prefixes keyed by IXP id."""
        result: dict[int, list[Prefix]] = {}
        for row in self.ixlan:
            result.setdefault(row.ixp_id, []).append(row.prefix)
        return result

    def members_of_ixp(self, ixp_id: int) -> set[int]:
        """netixlan member ASNs of one IXP."""
        return {row.asn for row in self.netixlan if row.ixp_id == ixp_id}
