"""Team Cymru style IP-to-ASN mapping service.

Section 4.1 maps every traceroute interface to an ASN with Team Cymru's
service, which answers with the origin AS of the longest matching BGP
announcement.  Two systematic error classes matter to the paper:

* point-to-point interconnect subnets are numbered out of *one* of the
  two ASes' blocks, so the far-side interface longest-prefix-matches to
  the near-side AS (the paper found 1,138 interfaces in 240 alias sets
  with conflicting mappings, repaired by alias majority vote);
* IXP peering LANs may or may not be announced; when announced they
  map to the exchange's own ASN, otherwise the lookup fails.

The service here is honest longest-prefix matching over what the
generated Internet announces — the errors emerge, they are not injected.
"""

from __future__ import annotations

from random import Random

from ..topology.addressing import LongestPrefixMatcher
from ..topology.topology import Topology

__all__ = ["CymruService"]


class CymruService:
    """Longest-prefix IP-to-ASN lookups over announced prefixes."""

    def __init__(self, topology: Topology, announce_ixp_lan_prob: float = 0.6, seed: int = 0) -> None:
        """Builds the announcement table.

        ``announce_ixp_lan_prob`` controls how many exchanges announce
        their peering LAN in BGP (many do, some do not); unannounced
        LANs resolve to ``None`` exactly like in the wild.
        """
        rng = Random(seed)
        self._table: LongestPrefixMatcher[int] = LongestPrefixMatcher()
        for asn, record in topology.ases.items():
            for prefix in record.prefixes:
                self._table.insert(prefix, asn)
        for ixp in topology.ixps.values():
            if not ixp.active:
                continue
            if rng.random() < announce_ixp_lan_prob:
                for lan in ixp.peering_lans:
                    self._table.insert(lan, ixp.asn)
        self.lookups = 0

    def lookup(self, address: int) -> int | None:
        """Origin ASN of the longest announcement covering ``address``."""
        self.lookups += 1
        return self._table.lookup(address)

    def bulk_lookup(self, addresses: list[int]) -> dict[int, int | None]:
        """Batched lookups (the whois-bulk interface of the service)."""
        return {address: self.lookup(address) for address in addresses}
