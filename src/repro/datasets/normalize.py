"""Location normalisation for volunteer-maintained databases.

Section 3.1.1: PeeringDB is compiled manually, so "there are cases where
different naming schemes are used for the same city or country".  The
paper converts names to standard ISO/UN forms and groups cities whose
facilities are within 5 miles into one metropolitan area (Jersey City
and New York City become the NYC metro).

This module reproduces that cleaning step: alias-aware metro resolution
against the catalogue, with a coordinate fallback using the 5-mile
grouping rule for spellings the catalogue has never seen.
"""

from __future__ import annotations

from ..topology.geo import (
    METRO_GROUPING_MILES,
    GeoLocation,
    Metro,
    MetroCatalogue,
    haversine_km,
    miles_to_km,
)

__all__ = ["LocationNormalizer"]


class LocationNormalizer:
    """Folds raw city strings and coordinates into canonical metros."""

    def __init__(self, catalogue: MetroCatalogue) -> None:
        self._catalogue = catalogue
        self._grouping_km = miles_to_km(METRO_GROUPING_MILES)

    def normalize_city(self, raw_city: str) -> str | None:
        """Canonical metro for a raw city string, or ``None`` if unknown.

        Handles exact canonical names, catalogued aliases, and common
        decorations (surrounding whitespace, trailing country suffixes
        after a comma).
        """
        candidate = raw_city.strip()
        if not candidate:
            return None
        metro = self._catalogue.get(candidate)
        if metro is not None:
            return metro.name
        # "Frankfurt, DE" / "Frankfurt am Main, Germany" style suffixes.
        head = candidate.split(",")[0].strip()
        if head and head != candidate:
            metro = self._catalogue.get(head)
            if metro is not None:
                return metro.name
        return None

    def normalize_location(
        self, raw_city: str, location: GeoLocation | None
    ) -> str | None:
        """Normalise by name first, by coordinates second.

        The coordinate fallback applies the paper's grouping rule: a
        record lands in a metro when it is within the 5-mile grouping
        radius of that metro's core (with slack for the street-level
        jitter of facility coordinates).
        """
        by_name = self.normalize_city(raw_city)
        if by_name is not None:
            return by_name
        if location is None:
            return None
        nearest = self._catalogue.nearest(location)
        distance_km = haversine_km(nearest.location, location)
        if distance_km <= self._grouping_km * 2.0:
            return nearest.name
        return None

    def same_metro(self, a: GeoLocation, b: GeoLocation) -> bool:
        """The raw 5-mile grouping test between two coordinate pairs."""
        return haversine_km(a, b) <= self._grouping_km

    def metro_of(self, name: str) -> Metro | None:
        """Catalogue record for a canonical metro name."""
        return self._catalogue.get(name)
