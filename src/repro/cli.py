"""Command-line interface: run the pipeline and the paper's experiments.

Usage (via ``python -m repro``)::

    python -m repro summary  [--seed N] [--scale small|default|large|xlarge]
    python -m repro run      [--seed N] [--scale ...] [--workers N]
                             [--shard-timeout S] [--json PATH]
                             [--checkpoint-dir DIR] [--resume]
    python -m repro serve    [--seed N] [--scale ...] [--epochs N]
                             [--checkpoint-dir DIR] [--resume]
                             [--stop-after-epoch K] [--queries PATH|-]
    python -m repro experiment {table1,fig2,fig3,fig7,fig8,fig9,fig10,
                                proximity,multirole,ablation}
                             [--seed N] [--scale ...]
    python -m repro chaos    [--seed N] [--scale ...]
                             [--intensities 0,0.25,0.5,1]
                             [--no-degraded] [--json PATH]
    python -m repro soak     [--seed N] [--scale ...] [--epochs N]
                             [--threads N] [--intensity X]
                             [--error-budget X] [--no-verify]
                             [--quick] [--sanitize] [--json PATH]
    python -m repro outage   [--seed N] [--scale ...] [--epochs N]
                             [--churn 0,1] [--faults 0,1]
                             [--json PATH]
    python -m repro lint     [PATH] [--format text|json] [--rule R00X]
                             [--baseline [FILE]] [--no-flow]
                             [--graph FILE]

``summary`` prints the generated Internet's shape; ``run`` executes the
full campaign + CFS and reports (optionally exporting the inferred map
as JSON); ``serve`` runs the always-on map service — the campaign
streams in as epochs, each publishing a versioned snapshot, then a
line-oriented query loop answers lookups against the live map;
``experiment`` regenerates one of the paper's tables/figures; ``chaos``
sweeps the moderate fault profile across intensities and reports how
inference accuracy degrades; ``soak`` hammers the map service with
query threads while a faulty stream ingests (availability, staleness,
recovery latency, fingerprint-identity gate); ``outage`` sweeps churn
rate × fault intensity over the temporal stream and scores the
disruption detector's precision/recall/latency against the churn
plan's seeded event log; ``lint`` runs the
reprolint static analyzer over the source tree (also available
standalone as ``repro-lint``).

Subcommands self-register in the :data:`SUBCOMMANDS` registry — one
declarative :class:`Subcommand` record each (name, help, argument
wiring, handler, whether the shared ``--seed``/``--scale`` validation
applies) — so adding a command never touches the dispatch logic.

Invalid ``--scale`` / ``--seed`` values exit with a one-line error on
stderr and status 2 — no traceback.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from dataclasses import dataclass
from typing import Callable

from .cliutil import cli_error
from .core.pipeline import Environment, PipelineConfig, build_environment

__all__ = ["SUBCOMMANDS", "Subcommand", "build_parser", "main"]


# ---------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Subcommand:
    """One declaratively registered CLI subcommand."""

    #: Subcommand name as typed on the command line.
    name: str
    #: One-line help shown in ``repro --help``.
    help: str
    #: Handler; returns the process exit code.  ``ValueError`` raised
    #: here (or during validation) is rendered by ``cliutil.cli_error``.
    run: Callable[[argparse.Namespace], int]
    #: Adds the subcommand's own arguments (``None`` = no extra args).
    configure: Callable[[argparse.ArgumentParser], None] | None = None
    #: Whether the shared ``--seed``/``--scale``/``--workers`` checks
    #: apply (lint manages its own arguments and skips them).
    validates: bool = True


def _config_for(
    scale: str,
    seed: int,
    workers: int = 1,
    shard_timeout: float | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
) -> PipelineConfig:
    config = PipelineConfig.for_scale(scale, seed=seed, workers=workers)
    if shard_timeout is not None or checkpoint_dir is not None or resume:
        config = dataclasses.replace(
            config,
            shard_timeout_s=shard_timeout,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
        )
    return config


def _environment_for(args: argparse.Namespace) -> Environment:
    return build_environment(
        _config_for(
            args.scale,
            args.seed,
            args.workers,
            shard_timeout=args.shard_timeout,
        )
    )


def _write_or_print(text: str, path: str, what: str) -> None:
    """Write ``text`` to ``path``, or print it when ``path`` is ``-``."""
    if path == "-":
        print(text)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"{what} written to {path}")


# ---------------------------------------------------------------------
# summary
# ---------------------------------------------------------------------


def _cmd_summary(args: argparse.Namespace) -> int:
    env = _environment_for(args)
    topology = env.topology
    print("generated Internet:")
    for key, value in topology.summary().items():
        print(f"  {key:>16}: {value}")
    print("study targets:")
    for asn in env.target_asns:
        record = topology.ases[asn]
        print(
            f"  AS{asn:<6} {record.name:<12} role={record.role.value:<8}"
            f" facilities={len(record.facility_ids)}"
        )
    rows = env.platforms.table1()
    print("platforms (VPs/ASNs/countries):")
    for stats in rows:
        print(
            f"  {stats.platform:>14}: {stats.vantage_points:>5} / "
            f"{stats.asns:>4} / {stats.countries:>3}"
        )
    return 0


# ---------------------------------------------------------------------
# run
# ---------------------------------------------------------------------


def _configure_run(run: argparse.ArgumentParser) -> None:
    run.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the inferred map as JSON to PATH ('-' for stdout)",
    )
    run.add_argument(
        "--metrics",
        action="store_true",
        help="print the run's counters and per-stage timings",
    )
    run.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="durably checkpoint each completed pipeline stage under DIR",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="load intact stages from --checkpoint-dir instead of "
        "recomputing them (corrupt stages degrade to recompute); the "
        "resumed run's output is byte-identical to an uninterrupted one",
    )


def _print_metrics(result) -> None:
    metrics = result.metrics
    if metrics is None:
        print("no metrics recorded")
        return
    print("stage timings:")
    for name in sorted(metrics.stage_seconds):
        seconds = metrics.stage_seconds[name]
        calls = metrics.stage_calls.get(name, 0)
        print(f"  {name:>12}: {seconds:8.3f}s over {calls} calls")
    print("counters:")
    for name in sorted(metrics.counters):
        print(f"  {name}: {metrics.counters[name]}")


def _cmd_run(args: argparse.Namespace) -> int:
    # Imported lazily: only the run command drives the checkpointing
    # orchestrator; the other commands wire the environment directly.
    from .core.pipeline import run_pipeline
    from .export import dumps_result
    from .obs import Instrumentation
    from .validation.metrics import score_interfaces, unresolved_city_constrained

    if args.resume and args.checkpoint_dir is None:
        raise ValueError(
            "--resume requires --checkpoint-dir (there is "
            "nothing to resume from)"
        )
    config = _config_for(
        args.scale,
        args.seed,
        args.workers,
        shard_timeout=args.shard_timeout,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )
    started = time.perf_counter()
    instrumentation = Instrumentation()
    print("running campaign + Constrained Facility Search ...")
    run = run_pipeline(
        config, instrumentation=instrumentation, progress=print
    )
    env = run.environment
    result = run.cfs_result
    elapsed = time.perf_counter() - started
    print(f"  corpus holds {len(run.corpus)} traceroutes")
    print(
        f"  {result.iterations_run} iterations, "
        f"{result.followup_traces} follow-up traces, {elapsed:.1f}s"
    )
    print(
        f"resolved {len(result.resolved_interfaces())} of "
        f"{result.peering_interfaces_seen} peering interfaces "
        f"({result.resolved_fraction():.1%})"
    )
    city_frac = unresolved_city_constrained(result, env.facility_db)
    print(f"unresolved interfaces pinned to a single city: {city_frac:.1%}")
    report = score_interfaces(env.topology, result)
    print(
        f"omniscient accuracy: facility {report.facility_accuracy:.1%}, "
        f"city {report.city_accuracy:.1%}"
    )
    if args.metrics:
        _print_metrics(result)
    if args.json is not None:
        _write_or_print(
            dumps_result(result, env.facility_db), args.json, "inferred map"
        )
    return 0


# ---------------------------------------------------------------------
# serve
# ---------------------------------------------------------------------


def _configure_serve(serve: argparse.ArgumentParser) -> None:
    serve.add_argument(
        "--epochs",
        type=int,
        default=4,
        help="number of contiguous epochs the campaign streams in as "
        "(default: 4; each epoch publishes one versioned snapshot)",
    )
    serve.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="durably publish every snapshot (and the mid-stream resume "
        "state) under DIR",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="restore mid-stream state from --checkpoint-dir and continue "
        "the stream (the re-published snapshots are byte-identical)",
    )
    serve.add_argument(
        "--stop-after-epoch",
        type=int,
        default=None,
        metavar="K",
        help="pause the service after epoch K's snapshot is published "
        "(simulates a shutdown mid-stream; resume later with --resume)",
    )
    serve.add_argument(
        "--queries",
        metavar="PATH",
        default=None,
        help="after the stream, answer line-protocol queries from PATH "
        "('-' reads stdin as a REPL); one JSON object per line "
        "(commands: iface <addr>, link <asn> <asn>, tenants <id>, "
        "info, help)",
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the serve package pulls in checkpoint + pipeline.
    from .obs import Instrumentation
    from .serve import MapService

    if args.epochs < 1:
        raise ValueError(f"invalid epochs {args.epochs}: must be at least 1")
    if args.stop_after_epoch is not None and args.stop_after_epoch < 0:
        raise ValueError(
            f"invalid --stop-after-epoch {args.stop_after_epoch}: "
            "must be non-negative"
        )
    if args.resume and args.checkpoint_dir is None:
        raise ValueError(
            "--resume requires --checkpoint-dir (there is "
            "nothing to resume from)"
        )
    config = _config_for(
        args.scale,
        args.seed,
        args.workers,
        shard_timeout=args.shard_timeout,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )
    print(
        f"map service: streaming campaign in {args.epochs} epochs "
        f"(scale={args.scale}, seed={args.seed}) ..."
    )
    service = MapService(
        config, instrumentation=Instrumentation(), progress=print
    )
    handle = service.run_stream(
        args.epochs, stop_after_epoch=args.stop_after_epoch
    )
    for snapshot in handle.snapshots:
        label = "final" if snapshot.final else f"epoch {snapshot.epoch}"
        print(
            f"  snapshot {label}: {snapshot.stats['interfaces']} interfaces, "
            f"{snapshot.stats['links']} links, "
            f"fingerprint {snapshot.fingerprint[:12]}…"
        )
    if handle.final is None:
        print("service paused mid-stream (resume with --resume)")
    if args.queries is not None:
        source = sys.stdin if args.queries == "-" else open(
            args.queries, encoding="utf-8"
        )
        try:
            for line in source:
                if not line.strip():
                    continue
                print(service.engine.execute_line(line))
        finally:
            if source is not sys.stdin:
                source.close()
    return 0


# ---------------------------------------------------------------------
# experiment
# ---------------------------------------------------------------------


def _configure_experiment(experiment: argparse.ArgumentParser) -> None:
    experiment.add_argument(
        "name",
        choices=(
            "table1",
            "fig2",
            "fig3",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "proximity",
            "multirole",
            "ablation",
        ),
    )


def _cmd_experiment(args: argparse.Namespace) -> int:
    # Imported lazily: the experiments package pulls in every harness.
    from . import experiments

    env = _environment_for(args)
    name = args.name
    if name == "table1":
        print(experiments.run_table1(env).format())
        return 0
    if name == "fig2":
        print(experiments.run_fig2(env).format())
        return 0
    if name == "fig3":
        print(experiments.run_fig3(env.topology).format())
        return 0
    if name == "fig7":
        print(experiments.run_fig7(env).format())
        return 0

    corpus = env.run_campaign()
    if name == "fig8":
        print(experiments.run_fig8(env, corpus, repeats=2).format())
        return 0
    if name == "ablation":
        print(experiments.run_ablation(env, corpus).format())
        return 0

    result = env.run_cfs(corpus)
    if name == "fig9":
        print(experiments.run_fig9(env, result).format())
    elif name == "fig10":
        print(experiments.run_fig10(env, result).format())
    elif name == "proximity":
        print(experiments.run_proximity_validation(env, result).format())
    elif name == "multirole":
        print(experiments.run_multirole_census(env, result).format())
    return 0


# ---------------------------------------------------------------------
# chaos
# ---------------------------------------------------------------------


def _configure_chaos(chaos: argparse.ArgumentParser) -> None:
    chaos.add_argument(
        "--intensities",
        default="0,0.25,0.5,1",
        help="comma-separated fault intensities to sweep (default: "
        "0,0.25,0.5,1; each scales the moderate profile)",
    )
    chaos.add_argument(
        "--no-degraded",
        action="store_true",
        help="run CFS without degraded mode (inferences may empty out "
        "under heavy dataset faults)",
    )
    chaos.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the sweep report as JSON to PATH ('-' for stdout)",
    )


def _cmd_chaos(args: argparse.Namespace) -> int:
    # Imported lazily: repro.faults sits below the pipeline layers and
    # must not pull them in at repro.cli import time.
    import json as _json

    from .faults.chaos import run_chaos

    try:
        intensities = tuple(
            float(item) for item in args.intensities.split(",") if item.strip()
        )
    except ValueError:
        raise ValueError(
            f"invalid --intensities {args.intensities!r}: expected "
            "comma-separated numbers, e.g. 0,0.25,0.5,1"
        ) from None
    if not intensities:
        raise ValueError("--intensities must name at least one intensity")
    print(
        f"chaos sweep over {len(intensities)} intensities "
        f"(scale={args.scale}, seed={args.seed}) ..."
    )
    report = run_chaos(
        seed=args.seed,
        scale=args.scale,
        intensities=intensities,
        degraded=not args.no_degraded,
    )
    print(report.format())
    if args.json is not None:
        _write_or_print(
            _json.dumps(report.as_dict(), indent=2), args.json, "chaos report"
        )
    return 0


# ---------------------------------------------------------------------
# soak
# ---------------------------------------------------------------------


def _configure_soak(soak: argparse.ArgumentParser) -> None:
    soak.add_argument(
        "--epochs",
        type=int,
        default=8,
        help="epochs the faulty stream ingests (default: 8)",
    )
    soak.add_argument(
        "--threads",
        type=int,
        default=4,
        help="query threads hammering the live engine (default: 4)",
    )
    soak.add_argument(
        "--intensity",
        type=float,
        default=1.0,
        help="scales the moderate profile's epoch_fail/snapshot_corrupt "
        "rates (default: 1.0)",
    )
    soak.add_argument(
        "--error-budget",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="allowed workload-error fraction (default: 0.0 — the seeded "
        "workload is all-valid lines)",
    )
    soak.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the fingerprint-identity gate against a fault-free "
        "batch run of the same seed",
    )
    soak.add_argument(
        "--quick",
        action="store_true",
        help="short smoke: 5 epochs, 2 threads (bench_pipeline --quick "
        "runs this shape)",
    )
    soak.add_argument(
        "--sanitize",
        action="store_true",
        help="arm the reprosan runtime sanitizer for the whole soak "
        "(equivalent to REPRO_SANITIZE=1); any violation fails the run",
    )
    soak.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the soak report as JSON to PATH ('-' for stdout)",
    )


def _cmd_soak(args: argparse.Namespace) -> int:
    # Imported lazily: the soak harness pulls in the whole serve stack.
    import json as _json

    from .serve.soak import run_soak

    if args.epochs < 1:
        raise ValueError(f"invalid epochs {args.epochs}: must be at least 1")
    if args.threads < 1:
        raise ValueError(f"invalid threads {args.threads}: must be at least 1")
    if args.intensity < 0:
        raise ValueError(
            f"invalid intensity {args.intensity}: must be non-negative"
        )
    if args.error_budget < 0:
        raise ValueError(
            f"invalid error budget {args.error_budget}: must be non-negative"
        )
    epochs = min(args.epochs, 5) if args.quick else args.epochs
    threads = min(args.threads, 2) if args.quick else args.threads
    print(
        f"chaos soak: {threads} query threads over a faulty "
        f"{epochs}-epoch stream (scale={args.scale}, seed={args.seed}) ..."
    )
    report = run_soak(
        seed=args.seed,
        scale=args.scale,
        epochs=epochs,
        threads=threads,
        intensity=args.intensity,
        error_budget=args.error_budget,
        verify_identity=not args.no_verify,
        sanitize=args.sanitize,
        progress=print,
    )
    print(report.format())
    if args.json is not None:
        _write_or_print(
            _json.dumps(report.as_dict(), indent=2), args.json, "soak report"
        )
    return 0 if report.ok else 1


# ---------------------------------------------------------------------
# outage
# ---------------------------------------------------------------------


def _configure_outage(outage: argparse.ArgumentParser) -> None:
    outage.add_argument(
        "--epochs",
        type=int,
        default=10,
        help="epochs per sweep cell (default: 10)",
    )
    outage.add_argument(
        "--churn",
        default="0,1",
        help="comma-separated churn intensities to sweep (default: 0,1; "
        "each scales the moderate churn profile)",
    )
    outage.add_argument(
        "--faults",
        default="0,1",
        help="comma-separated fault intensities to sweep (default: 0,1; "
        "each scales the moderate measurement-fault profile)",
    )
    outage.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the sweep report as JSON to PATH ('-' for stdout)",
    )


def _parse_intensities(text: str, flag: str) -> tuple[float, ...]:
    try:
        values = tuple(
            float(item) for item in text.split(",") if item.strip()
        )
    except ValueError:
        raise ValueError(
            f"invalid {flag} {text!r}: expected comma-separated numbers, "
            "e.g. 0,0.5,1"
        ) from None
    if not values:
        raise ValueError(f"{flag} must name at least one intensity")
    return values


def _cmd_outage(args: argparse.Namespace) -> int:
    # Imported lazily: the outage harness pulls in the whole serve stack.
    import json as _json

    from .serve.outage import run_outage

    if args.epochs < 1:
        raise ValueError(f"invalid epochs {args.epochs}: must be at least 1")
    churn = _parse_intensities(args.churn, "--churn")
    faults = _parse_intensities(args.faults, "--faults")
    print(
        f"outage sweep: {len(churn)}x{len(faults)} cells of "
        f"{args.epochs} churned epochs each "
        f"(scale={args.scale}, seed={args.seed}) ..."
    )
    report = run_outage(
        seed=args.seed,
        scale=args.scale,
        epochs=args.epochs,
        churn_intensities=churn,
        fault_intensities=faults,
        progress=print,
    )
    print(report.format())
    if args.json is not None:
        _write_or_print(
            _json.dumps(report.as_dict(), indent=2), args.json, "outage report"
        )
    return 0


# ---------------------------------------------------------------------
# lint
# ---------------------------------------------------------------------


def _configure_lint(lint: argparse.ArgumentParser) -> None:
    # Imported lazily; the parser wiring itself is cheap.
    from .devtools.cli import add_lint_arguments

    add_lint_arguments(lint)


def _cmd_lint(args: argparse.Namespace) -> int:
    from .devtools.cli import run_lint_command

    return run_lint_command(args)


# ---------------------------------------------------------------------
# Registry + dispatch
# ---------------------------------------------------------------------

#: Every subcommand, in help order.  Adding a command = adding a record.
SUBCOMMANDS: tuple[Subcommand, ...] = (
    Subcommand(
        name="summary",
        help="print the generated Internet's shape",
        run=_cmd_summary,
    ),
    Subcommand(
        name="run",
        help="run the campaign and CFS",
        run=_cmd_run,
        configure=_configure_run,
    ),
    Subcommand(
        name="serve",
        help="run the always-on map service (streamed epochs, versioned "
        "snapshots, line-oriented queries)",
        run=_cmd_serve,
        configure=_configure_serve,
    ),
    Subcommand(
        name="experiment",
        help="regenerate one paper table/figure",
        run=_cmd_experiment,
        configure=_configure_experiment,
    ),
    Subcommand(
        name="chaos",
        help="sweep fault intensity and report degradation",
        run=_cmd_chaos,
        configure=_configure_chaos,
    ),
    Subcommand(
        name="soak",
        help="hammer the map service with query threads while a faulty "
        "stream ingests (availability + identity gate)",
        run=_cmd_soak,
        configure=_configure_soak,
    ),
    Subcommand(
        name="outage",
        help="sweep churn rate x fault intensity over the temporal "
        "stream and score disruption detection against the seeded "
        "event log",
        run=_cmd_outage,
        configure=_configure_outage,
    ),
    Subcommand(
        name="lint",
        help="run the reprolint invariant checks over the tree",
        run=_cmd_lint,
        configure=_configure_lint,
        validates=False,
    ),
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command-line interface from the registry."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Constrained Facility Search over a synthetic Internet",
    )
    # --seed and --scale are validated in main() (not via argparse
    # choices=) so bad values produce a clean one-line error.
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--scale",
        default="small",
        help="topology scale: small, default, large, or xlarge "
        "(default: small)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width for the campaign and trace extraction "
        "(default: 1 = serial; output is byte-identical at any width)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard progress deadline for the parallel-executor "
        "supervisor (default: no deadline; hung shards are retried and "
        "eventually quarantined to serial execution)",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    for subcommand in SUBCOMMANDS:
        subparser = commands.add_parser(subcommand.name, help=subcommand.help)
        if subcommand.configure is not None:
            subcommand.configure(subparser)
        subparser.set_defaults(_subcommand=subcommand)
    return parser


def _validate_common(args: argparse.Namespace) -> None:
    """Shared ``--seed``/``--scale``/``--workers`` checks (ValueError)."""
    if args.scale not in PipelineConfig.SCALES:
        raise ValueError(
            f"unknown scale {args.scale!r}; expected one of "
            f"{PipelineConfig.SCALES}"
        )
    if args.seed < 0:
        raise ValueError(f"invalid seed {args.seed}: must be non-negative")
    if args.workers < 1:
        raise ValueError(f"invalid workers {args.workers}: must be at least 1")
    if args.shard_timeout is not None and args.shard_timeout <= 0:
        raise ValueError(
            f"invalid shard timeout {args.shard_timeout}: must be positive"
        )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Invalid ``--scale`` / ``--seed`` / ``--intensities`` values print a
    one-line ``error: ...`` to stderr and return 2 instead of raising.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    subcommand: Subcommand = args._subcommand
    if not subcommand.validates:
        return subcommand.run(args)
    try:
        _validate_common(args)
        return subcommand.run(args)
    except ValueError as error:
        return cli_error(str(error))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
