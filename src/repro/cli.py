"""Command-line interface: run the pipeline and the paper's experiments.

Usage (via ``python -m repro``)::

    python -m repro summary  [--seed N] [--scale small|default|large]
    python -m repro run      [--seed N] [--scale ...] [--json PATH]
    python -m repro experiment {table1,fig2,fig3,fig7,fig8,fig9,fig10,
                                proximity,multirole,ablation}
                             [--seed N] [--scale ...]

``summary`` prints the generated Internet's shape; ``run`` executes the
full campaign + CFS and reports (optionally exporting the inferred map
as JSON); ``experiment`` regenerates one of the paper's tables/figures.
"""

from __future__ import annotations

import argparse
import sys
import time

from .core.pipeline import Environment, PipelineConfig, build_environment
from .export import dumps_result
from .obs import Instrumentation
from .validation.metrics import score_interfaces, unresolved_city_constrained

__all__ = ["main", "build_parser"]


def _config_for(scale: str, seed: int) -> PipelineConfig:
    return PipelineConfig.for_scale(scale, seed=seed)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Constrained Facility Search over a synthetic Internet",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--scale",
        choices=("small", "default", "large"),
        default="small",
        help="topology scale (default: small)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("summary", help="print the generated Internet's shape")

    run = commands.add_parser("run", help="run the campaign and CFS")
    run.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the inferred map as JSON to PATH ('-' for stdout)",
    )
    run.add_argument(
        "--metrics",
        action="store_true",
        help="print the run's counters and per-stage timings",
    )

    experiment = commands.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment.add_argument(
        "name",
        choices=(
            "table1",
            "fig2",
            "fig3",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "proximity",
            "multirole",
            "ablation",
        ),
    )
    return parser


def _cmd_summary(env: Environment) -> int:
    topology = env.topology
    print("generated Internet:")
    for key, value in topology.summary().items():
        print(f"  {key:>16}: {value}")
    print("study targets:")
    for asn in env.target_asns:
        record = topology.ases[asn]
        print(
            f"  AS{asn:<6} {record.name:<12} role={record.role.value:<8}"
            f" facilities={len(record.facility_ids)}"
        )
    rows = env.platforms.table1()
    print("platforms (VPs/ASNs/countries):")
    for stats in rows:
        print(
            f"  {stats.platform:>14}: {stats.vantage_points:>5} / "
            f"{stats.asns:>4} / {stats.countries:>3}"
        )
    return 0


def _print_metrics(result) -> None:
    metrics = result.metrics
    if metrics is None:
        print("no metrics recorded")
        return
    print("stage timings:")
    for name in sorted(metrics.stage_seconds):
        seconds = metrics.stage_seconds[name]
        calls = metrics.stage_calls.get(name, 0)
        print(f"  {name:>12}: {seconds:8.3f}s over {calls} calls")
    print("counters:")
    for name in sorted(metrics.counters):
        print(f"  {name}: {metrics.counters[name]}")


def _cmd_run(env: Environment, json_path: str | None, metrics: bool) -> int:
    started = time.perf_counter()
    instrumentation = Instrumentation()
    print("running initial campaign ...")
    corpus = env.run_campaign(instrumentation=instrumentation)
    print(f"  {len(corpus)} traceroutes collected")
    print("running Constrained Facility Search ...")
    result = env.run_cfs(corpus, instrumentation=instrumentation)
    elapsed = time.perf_counter() - started
    print(
        f"  {result.iterations_run} iterations, "
        f"{result.followup_traces} follow-up traces, {elapsed:.1f}s"
    )
    print(
        f"resolved {len(result.resolved_interfaces())} of "
        f"{result.peering_interfaces_seen} peering interfaces "
        f"({result.resolved_fraction():.1%})"
    )
    city_frac = unresolved_city_constrained(result, env.facility_db)
    print(f"unresolved interfaces pinned to a single city: {city_frac:.1%}")
    report = score_interfaces(env.topology, result)
    print(
        f"omniscient accuracy: facility {report.facility_accuracy:.1%}, "
        f"city {report.city_accuracy:.1%}"
    )
    if metrics:
        _print_metrics(result)
    if json_path is not None:
        text = dumps_result(result, env.facility_db)
        if json_path == "-":
            print(text)
        else:
            with open(json_path, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"inferred map written to {json_path}")
    return 0


def _cmd_experiment(env: Environment, name: str) -> int:
    # Imported lazily: the experiments package pulls in every harness.
    from . import experiments

    if name == "table1":
        print(experiments.run_table1(env).format())
        return 0
    if name == "fig2":
        print(experiments.run_fig2(env).format())
        return 0
    if name == "fig3":
        print(experiments.run_fig3(env.topology).format())
        return 0
    if name == "fig7":
        print(experiments.run_fig7(env).format())
        return 0

    corpus = env.run_campaign()
    if name == "fig8":
        print(experiments.run_fig8(env, corpus, repeats=2).format())
        return 0
    if name == "ablation":
        print(experiments.run_ablation(env, corpus).format())
        return 0

    result = env.run_cfs(corpus)
    if name == "fig9":
        print(experiments.run_fig9(env, result).format())
    elif name == "fig10":
        print(experiments.run_fig10(env, result).format())
    elif name == "proximity":
        print(experiments.run_proximity_validation(env, result).format())
    elif name == "multirole":
        print(experiments.run_multirole_census(env, result).format())
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    env = build_environment(_config_for(args.scale, args.seed))
    if args.command == "summary":
        return _cmd_summary(env)
    if args.command == "run":
        return _cmd_run(env, args.json, args.metrics)
    if args.command == "experiment":
        return _cmd_experiment(env, args.name)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
