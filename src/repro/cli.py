"""Command-line interface: run the pipeline and the paper's experiments.

Usage (via ``python -m repro``)::

    python -m repro summary  [--seed N] [--scale small|default|large]
    python -m repro run      [--seed N] [--scale ...] [--workers N]
                             [--shard-timeout S] [--json PATH]
                             [--checkpoint-dir DIR] [--resume]
    python -m repro experiment {table1,fig2,fig3,fig7,fig8,fig9,fig10,
                                proximity,multirole,ablation}
                             [--seed N] [--scale ...]
    python -m repro chaos    [--seed N] [--scale ...]
                             [--intensities 0,0.25,0.5,1]
                             [--no-degraded] [--json PATH]
    python -m repro lint     [PATH] [--format text|json] [--rule R00X]
                             [--baseline [FILE]]

``summary`` prints the generated Internet's shape; ``run`` executes the
full campaign + CFS and reports (optionally exporting the inferred map
as JSON); ``experiment`` regenerates one of the paper's tables/figures;
``chaos`` sweeps the moderate fault profile across intensities and
reports how inference accuracy degrades; ``lint`` runs the reprolint
static analyzer over the source tree (also available standalone as
``repro-lint``).

Invalid ``--scale`` / ``--seed`` values exit with a one-line error on
stderr and status 2 — no traceback.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from .cliutil import cli_error
from .core.pipeline import Environment, PipelineConfig, build_environment
from .export import dumps_result
from .obs import Instrumentation
from .validation.metrics import score_interfaces, unresolved_city_constrained

__all__ = ["main", "build_parser"]


def _config_for(
    scale: str,
    seed: int,
    workers: int = 1,
    shard_timeout: float | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
) -> PipelineConfig:
    config = PipelineConfig.for_scale(scale, seed=seed, workers=workers)
    if shard_timeout is not None or checkpoint_dir is not None or resume:
        config = dataclasses.replace(
            config,
            shard_timeout_s=shard_timeout,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
        )
    return config


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Constrained Facility Search over a synthetic Internet",
    )
    # --seed and --scale are validated in main() (not via argparse
    # choices=) so bad values produce a clean one-line error.
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--scale",
        default="small",
        help="topology scale: small, default, or large (default: small)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width for the campaign and trace extraction "
        "(default: 1 = serial; output is byte-identical at any width)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard progress deadline for the parallel-executor "
        "supervisor (default: no deadline; hung shards are retried and "
        "eventually quarantined to serial execution)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("summary", help="print the generated Internet's shape")

    run = commands.add_parser("run", help="run the campaign and CFS")
    run.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the inferred map as JSON to PATH ('-' for stdout)",
    )
    run.add_argument(
        "--metrics",
        action="store_true",
        help="print the run's counters and per-stage timings",
    )
    run.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="durably checkpoint each completed pipeline stage under DIR",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="load intact stages from --checkpoint-dir instead of "
        "recomputing them (corrupt stages degrade to recompute); the "
        "resumed run's output is byte-identical to an uninterrupted one",
    )

    experiment = commands.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment.add_argument(
        "name",
        choices=(
            "table1",
            "fig2",
            "fig3",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "proximity",
            "multirole",
            "ablation",
        ),
    )

    chaos = commands.add_parser(
        "chaos", help="sweep fault intensity and report degradation"
    )
    chaos.add_argument(
        "--intensities",
        default="0,0.25,0.5,1",
        help="comma-separated fault intensities to sweep (default: "
        "0,0.25,0.5,1; each scales the moderate profile)",
    )
    chaos.add_argument(
        "--no-degraded",
        action="store_true",
        help="run CFS without degraded mode (inferences may empty out "
        "under heavy dataset faults)",
    )
    chaos.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the sweep report as JSON to PATH ('-' for stdout)",
    )

    # Imported lazily elsewhere; the parser wiring itself is cheap.
    from .devtools.cli import add_lint_arguments

    lint = commands.add_parser(
        "lint", help="run the reprolint invariant checks over the tree"
    )
    add_lint_arguments(lint)
    return parser


def _cmd_summary(env: Environment) -> int:
    topology = env.topology
    print("generated Internet:")
    for key, value in topology.summary().items():
        print(f"  {key:>16}: {value}")
    print("study targets:")
    for asn in env.target_asns:
        record = topology.ases[asn]
        print(
            f"  AS{asn:<6} {record.name:<12} role={record.role.value:<8}"
            f" facilities={len(record.facility_ids)}"
        )
    rows = env.platforms.table1()
    print("platforms (VPs/ASNs/countries):")
    for stats in rows:
        print(
            f"  {stats.platform:>14}: {stats.vantage_points:>5} / "
            f"{stats.asns:>4} / {stats.countries:>3}"
        )
    return 0


def _print_metrics(result) -> None:
    metrics = result.metrics
    if metrics is None:
        print("no metrics recorded")
        return
    print("stage timings:")
    for name in sorted(metrics.stage_seconds):
        seconds = metrics.stage_seconds[name]
        calls = metrics.stage_calls.get(name, 0)
        print(f"  {name:>12}: {seconds:8.3f}s over {calls} calls")
    print("counters:")
    for name in sorted(metrics.counters):
        print(f"  {name}: {metrics.counters[name]}")


def _cmd_run(
    config: PipelineConfig, json_path: str | None, metrics: bool
) -> int:
    # Imported lazily: only the run command drives the checkpointing
    # orchestrator; the other commands wire the environment directly.
    from .core.pipeline import run_pipeline

    started = time.perf_counter()
    instrumentation = Instrumentation()
    print("running campaign + Constrained Facility Search ...")
    run = run_pipeline(
        config, instrumentation=instrumentation, progress=print
    )
    env = run.environment
    result = run.cfs_result
    elapsed = time.perf_counter() - started
    print(f"  corpus holds {len(run.corpus)} traceroutes")
    print(
        f"  {result.iterations_run} iterations, "
        f"{result.followup_traces} follow-up traces, {elapsed:.1f}s"
    )
    print(
        f"resolved {len(result.resolved_interfaces())} of "
        f"{result.peering_interfaces_seen} peering interfaces "
        f"({result.resolved_fraction():.1%})"
    )
    city_frac = unresolved_city_constrained(result, env.facility_db)
    print(f"unresolved interfaces pinned to a single city: {city_frac:.1%}")
    report = score_interfaces(env.topology, result)
    print(
        f"omniscient accuracy: facility {report.facility_accuracy:.1%}, "
        f"city {report.city_accuracy:.1%}"
    )
    if metrics:
        _print_metrics(result)
    if json_path is not None:
        text = dumps_result(result, env.facility_db)
        if json_path == "-":
            print(text)
        else:
            with open(json_path, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"inferred map written to {json_path}")
    return 0


def _cmd_experiment(env: Environment, name: str) -> int:
    # Imported lazily: the experiments package pulls in every harness.
    from . import experiments

    if name == "table1":
        print(experiments.run_table1(env).format())
        return 0
    if name == "fig2":
        print(experiments.run_fig2(env).format())
        return 0
    if name == "fig3":
        print(experiments.run_fig3(env.topology).format())
        return 0
    if name == "fig7":
        print(experiments.run_fig7(env).format())
        return 0

    corpus = env.run_campaign()
    if name == "fig8":
        print(experiments.run_fig8(env, corpus, repeats=2).format())
        return 0
    if name == "ablation":
        print(experiments.run_ablation(env, corpus).format())
        return 0

    result = env.run_cfs(corpus)
    if name == "fig9":
        print(experiments.run_fig9(env, result).format())
    elif name == "fig10":
        print(experiments.run_fig10(env, result).format())
    elif name == "proximity":
        print(experiments.run_proximity_validation(env, result).format())
    elif name == "multirole":
        print(experiments.run_multirole_census(env, result).format())
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    # Imported lazily: repro.faults sits below the pipeline layers and
    # must not pull them in at repro.cli import time.
    import json as _json

    from .faults.chaos import run_chaos

    try:
        intensities = tuple(
            float(item) for item in args.intensities.split(",") if item.strip()
        )
    except ValueError:
        raise ValueError(
            f"invalid --intensities {args.intensities!r}: expected "
            "comma-separated numbers, e.g. 0,0.25,0.5,1"
        ) from None
    if not intensities:
        raise ValueError("--intensities must name at least one intensity")
    print(
        f"chaos sweep over {len(intensities)} intensities "
        f"(scale={args.scale}, seed={args.seed}) ..."
    )
    report = run_chaos(
        seed=args.seed,
        scale=args.scale,
        intensities=intensities,
        degraded=not args.no_degraded,
    )
    print(report.format())
    if args.json is not None:
        text = _json.dumps(report.as_dict(), indent=2)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"chaos report written to {args.json}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Invalid ``--scale`` / ``--seed`` / ``--intensities`` values print a
    one-line ``error: ...`` to stderr and return 2 instead of raising.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "lint":
        from .devtools.cli import run_lint_command

        return run_lint_command(args)
    try:
        if args.scale not in PipelineConfig.SCALES:
            raise ValueError(
                f"unknown scale {args.scale!r}; expected one of "
                f"{PipelineConfig.SCALES}"
            )
        if args.seed < 0:
            raise ValueError(f"invalid seed {args.seed}: must be non-negative")
        if args.workers < 1:
            raise ValueError(
                f"invalid workers {args.workers}: must be at least 1"
            )
        if args.shard_timeout is not None and args.shard_timeout <= 0:
            raise ValueError(
                f"invalid shard timeout {args.shard_timeout}: must be "
                "positive"
            )
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "run":
            if args.resume and args.checkpoint_dir is None:
                raise ValueError(
                    "--resume requires --checkpoint-dir (there is "
                    "nothing to resume from)"
                )
            config = _config_for(
                args.scale,
                args.seed,
                args.workers,
                shard_timeout=args.shard_timeout,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
            )
            return _cmd_run(config, args.json, args.metrics)
        env = build_environment(
            _config_for(
                args.scale,
                args.seed,
                args.workers,
                shard_timeout=args.shard_timeout,
            )
        )
        if args.command == "summary":
            return _cmd_summary(env)
        if args.command == "experiment":
            return _cmd_experiment(env, args.name)
    except ValueError as error:
        return cli_error(str(error))
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
