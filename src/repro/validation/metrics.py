"""Scoring: inference accuracy against oracles and omniscient truth.

Two scoring regimes coexist, as in the paper:

* **validation** (Figure 9): only what the four Section-6 sources can
  attest — per source × inferred-link-type accuracy fractions;
* **omniscient** scoring: the simulator knows every router's facility,
  so experiments can also report exact accuracy over *all* inferences —
  something the paper could not do, and the reason reproduction over a
  synthetic substrate is informative.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.types import CfsResult, LinkInference, PeeringKind
from ..topology.links import Interconnection
from ..topology.topology import Topology
__all__ = [
    "AccuracyReport",
    "ValidationCell",
    "score_interfaces",
    "score_links",
    "match_ground_truth_link",
    "missing_owner_facility_fraction",
    "unresolved_city_constrained",
    "validate_against_sources",
]


@dataclass(slots=True)
class AccuracyReport:
    """Facility- and city-level accuracy over a set of inferences."""

    exact: int = 0
    same_city: int = 0
    wrong_city: int = 0

    @property
    def total(self) -> int:
        """Number of scored inferences."""
        return self.exact + self.same_city + self.wrong_city

    @property
    def facility_accuracy(self) -> float:
        """Exact-facility share."""
        return self.exact / self.total if self.total else 0.0

    @property
    def city_accuracy(self) -> float:
        """Exact-or-same-city share."""
        if not self.total:
            return 0.0
        return (self.exact + self.same_city) / self.total

    def add(self, inferred_facility: int, true_facility: int, topology: Topology) -> None:
        """Score one inference against the truth."""
        if inferred_facility == true_facility:
            self.exact += 1
        elif (
            topology.facilities[inferred_facility].metro
            == topology.facilities[true_facility].metro
        ):
            self.same_city += 1
        else:
            self.wrong_city += 1


def unresolved_city_constrained(result: CfsResult, facility_db) -> float:
    """Fraction of unresolved interfaces pinned to a single *city*.

    Section 5: "For about 9% of the unresolved interfaces we were able
    to constrain the location of the interface to a single city."  An
    unresolved interface counts when all its candidate facilities share
    one canonical metro per the assembled facility database.
    """
    unresolved = [
        state
        for state in result.interfaces.values()
        if state.candidates is not None and len(state.candidates) > 1
    ]
    if not unresolved:
        return 0.0
    single_city = 0
    for state in unresolved:
        metros = facility_db.metros_of(state.candidates)
        if len(metros) == 1:
            single_city += 1
    return single_city / len(unresolved)


def missing_owner_facility_fraction(result: CfsResult, facility_db) -> float:
    """Among interfaces that did not resolve, the share whose owning AS
    has *no facility data at all* in the assembled map.

    Section 5: "For 33% of the interfaces that were not resolved to a
    facility, we did not have any facility information for the AS that
    owns the interface address."
    """
    unresolved = [
        state
        for state in result.interfaces.values()
        if state.resolved_facility is None
    ]
    if not unresolved:
        return 0.0
    missing = sum(
        1
        for state in unresolved
        if state.owner_asn is None
        or not facility_db.facilities_of(state.owner_asn)
    )
    return missing / len(unresolved)


def score_interfaces(topology: Topology, result: CfsResult) -> AccuracyReport:
    """Omniscient per-interface scoring of every resolved interface."""
    report = AccuracyReport()
    for address, facility in result.resolved_interfaces().items():
        if address not in topology.interfaces:
            continue
        report.add(facility, topology.true_facility_of_address(address), topology)
    return report


def match_ground_truth_link(
    topology: Topology, inference: LinkInference
) -> Interconnection | None:
    """The ground-truth interconnection an inference refers to.

    Matched through the near interface's true router: the link between
    the near and far ASes that terminates on that router (and on the
    inferred exchange, for public peerings).
    """
    interface = topology.interfaces.get(inference.near_address)
    if interface is None:
        return None
    near_router = interface.router_id
    near_asn = topology.routers[near_router].asn
    candidates = [
        link
        for link in topology.links_between(near_asn, inference.far_asn)
        if near_router in (link.router_a, link.router_b)
    ]
    if inference.ixp_id is not None:
        with_ixp = [link for link in candidates if link.ixp_id == inference.ixp_id]
        if with_ixp:
            candidates = with_ixp
    if not candidates:
        return None
    return min(candidates, key=lambda link: link.link_id)


def score_links(
    topology: Topology, result: CfsResult
) -> dict[str, dict[str, int]]:
    """Omniscient engineering-type confusion counts.

    Returns ``{true_type: {inferred_type: count}}`` over every link
    inference that matches a ground-truth interconnection.
    """
    confusion: dict[str, dict[str, int]] = {}
    for inference in result.links:
        link = match_ground_truth_link(topology, inference)
        if link is None:
            continue
        interface = topology.interfaces[inference.near_address]
        true_side = topology.side_type(
            link, topology.routers[interface.router_id].asn
        )
        row = confusion.setdefault(true_side, {})
        row[inference.inferred_type.value] = (
            row.get(inference.inferred_type.value, 0) + 1
        )
    return confusion


@dataclass(slots=True)
class ValidationCell:
    """One Figure-9 bar: matches/total for a (source, link type) pair."""

    source: str
    link_type: str
    matched: int = 0
    total: int = 0

    @property
    def accuracy(self) -> float:
        """Matched share of this cell."""
        return self.matched / self.total if self.total else 0.0

    def label(self) -> str:
        """The paper's ``matched/total`` annotation format."""
        return f"{self.matched}/{self.total}"


def validate_against_sources(
    result: CfsResult,
    sources: list,
    per_type: bool = True,
) -> list[ValidationCell]:
    """Figure 9: per-source, per-inferred-type validation accuracy.

    For each link inference with a pinned near facility, every source
    that can attest the near interface contributes one comparison.  The
    IXP-website source additionally checks remote-peering verdicts for
    peering-LAN ports.
    """
    cells: dict[tuple[str, str], ValidationCell] = {}

    def cell(source_name: str, link_type: str) -> ValidationCell:
        key = (source_name, link_type)
        if key not in cells:
            cells[key] = ValidationCell(source=source_name, link_type=link_type)
        return cells[key]

    # Deduplicate: one verdict per (source, address, type).
    seen: set[tuple[str, int, str]] = set()
    for inference in result.links:
        link_type = inference.inferred_type.value if per_type else "all"
        # Both sides of the link are validatable: the near interface
        # against the near facility, and (for the paper's
        # direct-feedback case, where the *targets* confirmed their own
        # interfaces) the far-side port or point-to-point interface
        # against the far facility.
        sides: list[tuple[int, int]] = []
        if inference.near_facility is not None:
            sides.append((inference.near_address, inference.near_facility))
        if inference.kind is PeeringKind.PUBLIC:
            # Peering-LAN ports are interface-level claims (including
            # proximity-heuristic assignments — the paper validates
            # exactly those against the detailed exchange data).
            if inference.ixp_address is not None and inference.far_facility is not None:
                sides.append((inference.ixp_address, inference.far_facility))
        elif inference.far_address is not None:
            # For private links, only a far interface with its own
            # resolved constraint state carries an interface-level
            # claim; the finalizer's campus deduction locates the far
            # *router's building* without binding the observed address
            # (which can be an interior interface on boundary-shifted
            # observations).
            far_state = result.interfaces.get(inference.far_address)
            if far_state is not None and far_state.resolved_facility is not None:
                sides.append(
                    (inference.far_address, far_state.resolved_facility)
                )
        for address, facility in sides:
            for source in sources:
                for sample in source.samples_for([address]):
                    if sample.true_facility is None:
                        continue
                    key = (source.name, sample.address, link_type)
                    if key in seen:
                        continue
                    seen.add(key)
                    target = cell(source.name, link_type)
                    target.total += 1
                    if sample.true_facility == facility:
                        target.matched += 1

    # Remote-peering verdicts against the detailed exchange websites.
    for source in sources:
        if getattr(source, "name", "") != "ixp-websites":
            continue
        for address, state in result.interfaces.items():
            for sample in source.samples_for([address]):
                if sample.is_remote is None:
                    continue
                key = (source.name, address, "remote-verdict")
                if key in seen:
                    continue
                seen.add(key)
                target = cell(source.name, "remote-verdict")
                target.total += 1
                if sample.is_remote == state.remote:
                    target.matched += 1
    return sorted(cells.values(), key=lambda c: (c.source, c.link_type))
