"""Validation oracles (Section 6) and accuracy scoring."""

from .metrics import (
    AccuracyReport,
    ValidationCell,
    match_ground_truth_link,
    missing_owner_facility_fraction,
    score_interfaces,
    score_links,
    unresolved_city_constrained,
    validate_against_sources,
)
from .sources import (
    BgpCommunitySource,
    DirectFeedbackSource,
    DnsRecordSource,
    IxpWebsiteSource,
    ValidationSample,
    build_all_sources,
)

__all__ = [
    "AccuracyReport",
    "BgpCommunitySource",
    "build_all_sources",
    "DirectFeedbackSource",
    "DnsRecordSource",
    "IxpWebsiteSource",
    "match_ground_truth_link",
    "missing_owner_facility_fraction",
    "score_interfaces",
    "score_links",
    "unresolved_city_constrained",
    "validate_against_sources",
    "ValidationCell",
    "ValidationSample",
]
