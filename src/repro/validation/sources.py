"""The four validation sources of Section 6.

Ground truth about interconnection facilities is scarce; the paper
combines four independent, partially overlapping oracles:

* **direct feedback** — two content operators confirmed the facilities
  of their own interfaces (474/540 correct at facility level);
* **BGP communities** — four large transit providers tag routes with
  ingress-point communities; a 109-entry dictionary decodes them to
  facilities, queried through BGP-capable looking glasses;
* **DNS records** — seven operators embed facility codes in hostnames
  and confirmed their conventions (``thn.lon`` = Telehouse North);
* **IXP websites** — five large exchanges publish exact member
  interface addresses and facilities, including remote/local flags.

Each source here exposes ``samples_for(addresses)``: the subset of the
given addresses it can attest, with the attested facility (and
remoteness where the source knows it).  Coverage limits mirror the
paper: a source only speaks for its own operators/exchanges.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets.dnsnames import DnsZone
from ..datasets.ixp_sources import IxpDataSources
from ..exec import substream
from ..topology.asn import ASRole
from ..topology.topology import Topology

__all__ = [
    "ValidationSample",
    "DirectFeedbackSource",
    "BgpCommunitySource",
    "DnsRecordSource",
    "IxpWebsiteSource",
    "build_all_sources",
]


@dataclass(frozen=True, slots=True)
class ValidationSample:
    """One attested fact about an interface."""

    source: str
    address: int
    true_facility: int | None
    is_remote: bool | None = None


class DirectFeedbackSource:
    """Operator feedback for the targets' own interfaces.

    The paper received validation from two CDN operators, covering only
    those operators' interfaces ("not the facilities of their peers").
    """

    name = "direct-feedback"

    def __init__(
        self,
        topology: Topology,
        confirming_asns: set[int],
        response_rate: float = 0.95,
        seed: int = 0,
    ) -> None:
        self._topology = topology
        self._asns = confirming_asns
        self._response_rate = response_rate
        self._seed = seed

    @classmethod
    def from_targets(
        cls, topology: Topology, target_asns: list[int], n_confirming: int = 2, seed: int = 0
    ) -> "DirectFeedbackSource":
        """Pick the confirming operators among the content targets."""
        content = [
            asn
            for asn in target_asns
            if topology.ases[asn].role is ASRole.CONTENT
        ]
        return cls(topology, set(content[:n_confirming]), seed=seed)

    def samples_for(self, addresses: list[int]) -> list[ValidationSample]:
        """Attestations this source can make about ``addresses``."""
        samples = []
        for address in addresses:
            interface = self._topology.interfaces.get(address)
            if interface is None:
                continue
            router = self._topology.routers[interface.router_id]
            if router.asn not in self._asns:
                continue
            # Whether the operator answered for this interface is a fixed
            # fact of the validation dataset, not a per-query coin flip.
            if substream(self._seed, address).random() >= self._response_rate:
                continue
            samples.append(
                ValidationSample(
                    source=self.name,
                    address=address,
                    true_facility=router.facility_id,
                )
            )
        return samples


class BgpCommunitySource:
    """Ingress-point communities decoded through a compiled dictionary.

    Only transit operators that run BGP-capable looking glasses and
    document their community values are usable; the communities attest
    the facility where a route enters the operator's network — i.e. the
    facility of the operator's border router on the peering.
    """

    name = "bgp-communities"

    def __init__(self, topology: Topology, max_operators: int = 4) -> None:
        self._topology = topology
        candidates = sorted(
            (
                record
                for record in topology.ases.values()
                if record.role in (ASRole.TIER1, ASRole.TRANSIT)
                and record.lg_supports_bgp
            ),
            key=lambda record: (-len(record.facility_ids), record.asn),
        )
        self._asns = {record.asn for record in candidates[:max_operators]}
        #: The compiled dictionary: (asn, community value) -> facility.
        self.dictionary: dict[tuple[int, str], int] = {}
        for asn in self._asns:
            for router_id in topology.routers_of(asn):
                facility = topology.routers[router_id].facility_id
                self.dictionary[(asn, f"ingress-fac:{facility}")] = facility

    @property
    def operator_asns(self) -> set[int]:
        """Operators this source can speak for."""
        return set(self._asns)

    def samples_for(self, addresses: list[int]) -> list[ValidationSample]:
        """Attestations this source can make about ``addresses``."""
        samples = []
        for address in addresses:
            interface = self._topology.interfaces.get(address)
            if interface is None:
                continue
            router = self._topology.routers[interface.router_id]
            if router.asn not in self._asns:
                continue
            community = f"ingress-fac:{router.facility_id}"
            facility = self.dictionary.get((router.asn, community))
            if facility is None:
                continue  # value missing from the compiled dictionary
            samples.append(
                ValidationSample(
                    source=self.name, address=address, true_facility=facility
                )
            )
        return samples


class DnsRecordSource:
    """Operators whose hostname conventions encode the facility.

    Conventions are only usable once confirmed with the operator (the
    paper confirmed seven, in the UK and Germany); stale records are a
    known hazard and are *not* filtered — they surface as the small
    disagreement rate real validation data shows.
    """

    name = "dns-records"

    def __init__(
        self,
        topology: Topology,
        dns: DnsZone,
        max_operators: int = 7,
    ) -> None:
        self._topology = topology
        self._dns = dns
        confirmed = sorted(
            (
                record
                for record in topology.ases.values()
                if record.dns_scheme == "facility"
            ),
            key=lambda record: (-len(record.facility_ids), record.asn),
        )
        self._asns = {record.asn for record in confirmed[:max_operators]}
        # Facility short-code table (public building directory data).
        self._code_to_facility = {
            facility.dns_code: facility.facility_id
            for facility in topology.facilities.values()
        }

    @property
    def operator_asns(self) -> set[int]:
        """Operators this source can speak for."""
        return set(self._asns)

    def samples_for(self, addresses: list[int]) -> list[ValidationSample]:
        """Attestations this source can make about ``addresses``."""
        samples = []
        for address in addresses:
            interface = self._topology.interfaces.get(address)
            if interface is None:
                continue
            router = self._topology.routers[interface.router_id]
            if router.asn not in self._asns:
                continue
            hostname = self._dns.ptr(address)
            if hostname is None:
                continue
            labels = hostname.split(".")
            if len(labels) < 2:
                continue
            facility = self._code_to_facility.get(labels[1])
            if facility is None:
                continue
            samples.append(
                ValidationSample(
                    source=self.name, address=address, true_facility=facility
                )
            )
        return samples


class IxpWebsiteSource:
    """Member/interface/facility lists from detailed exchange websites."""

    name = "ixp-websites"

    def __init__(self, ixp_sources: IxpDataSources) -> None:
        self._details: dict[int, ValidationSample] = {}
        for website in ixp_sources.detailed_websites():
            for member in website.member_details:
                self._details[member.address] = ValidationSample(
                    source=self.name,
                    address=member.address,
                    true_facility=member.facility_id,
                    is_remote=member.is_remote,
                )

    def samples_for(self, addresses: list[int]) -> list[ValidationSample]:
        """Attestations this source can make about ``addresses``."""
        return [
            self._details[address]
            for address in addresses
            if address in self._details
        ]


def build_all_sources(
    topology: Topology,
    dns: DnsZone,
    ixp_sources: IxpDataSources,
    target_asns: list[int],
    seed: int = 0,
) -> list:
    """All four Section-6 sources over one environment."""
    return [
        DirectFeedbackSource.from_targets(topology, target_asns, seed=seed),
        BgpCommunitySource(topology),
        DnsRecordSource(topology, dns),
        IxpWebsiteSource(ixp_sources),
    ]
