"""Atomic, durable file writes for checkpoint data.

Every byte the checkpoint subsystem persists goes through
:func:`atomic_write_bytes` (reprolint rule R008 enforces this): the
payload is written to a same-directory temporary file, flushed and
fsynced, then renamed over the destination, and finally the directory
entry itself is fsynced.  A crash at any instant leaves either the old
complete file or the new complete file — never a truncated mix — which
is the property the resume path's checksum verification builds on.

The temporary name embeds the writer's PID, so two processes racing on
one checkpoint directory cannot clobber each other's in-flight temp
file (last rename still wins, atomically).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "canonical_json",
    "sha256_hex",
]


def sha256_hex(data: bytes) -> str:
    """Content checksum used by the manifest."""
    return hashlib.sha256(data).hexdigest()


def canonical_json(document: Any) -> bytes:
    """One canonical byte rendering of a JSON document.

    Sorted keys and a fixed separator style make the bytes — and hence
    the checksum — a pure function of the document's value.
    """
    return (
        json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Durably replace ``path`` with ``data`` (write-temp-fsync-rename)."""
    path = Path(path)
    temp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    descriptor = os.open(
        temp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644
    )
    try:
        os.write(descriptor, data)
        os.fsync(descriptor)
    finally:
        os.close(descriptor)
    os.replace(temp, path)
    # The rename itself must survive a crash: fsync the directory entry.
    directory = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(directory)
    finally:
        os.close(directory)


def atomic_write_json(path: Path, document: Any) -> str:
    """Durably write ``document`` as canonical JSON; return its sha256."""
    data = canonical_json(document)
    atomic_write_bytes(path, data)
    return sha256_hex(data)
