"""Stage payload codecs: pipeline state ⇄ JSON-safe documents.

Each pipeline stage has an ``encode_*``/``decode_*`` pair whose round
trip is exact — every field that influences downstream computation
(including the measurement engines' issue accounting, whose counters
feed per-trace RNG substream keys) survives the trip bit-for-bit, which
is what makes a resumed run byte-identical to an uninterrupted one.
Floats ride on JSON's shortest-repr round trip, integers and strings
are exact by construction, sets are serialised as sorted lists and
rebuilt as sets, and enums travel by value.

The codecs are deliberately dumb: no versioned migrations, no partial
decodes.  A payload an old reader cannot understand fails loudly in the
decoder, and the caller (``run_pipeline``) treats any decode error like
a corrupt stage — warn and recompute.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..alias.midar import AliasSets
from ..core.types import (
    CfsResult,
    InferredType,
    InterfaceState,
    InterfaceStatus,
    IterationStats,
    LinkInference,
    PeeringKind,
)
from ..measurement.campaign import TraceCorpus
from ..measurement.traceroute import TraceHop, Traceroute
from ..obs import MetricsSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..measurement.platforms import PlatformSet
    from ..measurement.traceroute import TracerouteEngine
    from ..topology.topology import Topology

__all__ = [
    "decode_alias_stage",
    "decode_campaign_stage",
    "decode_cfs_stage",
    "encode_alias_stage",
    "encode_campaign_stage",
    "encode_cfs_stage",
    "encode_topology_stage",
]


# ----------------------------------------------------------------------
# Topology (verification only — topology is rebuilt from config)
# ----------------------------------------------------------------------


def encode_topology_stage(topology: "Topology") -> dict[str, Any]:
    """The generated Internet's headline sizes.

    The topology itself is rebuilt deterministically from the config on
    every run; the stage exists to *verify* that the rebuilt one matches
    the checkpointed one before any later stage is trusted.
    """
    return {"summary": dict(topology.summary())}


# ----------------------------------------------------------------------
# Campaign corpus + measurement accounting
# ----------------------------------------------------------------------


def encode_campaign_stage(
    corpus: TraceCorpus,
    engine: "TracerouteEngine",
    platforms: "PlatformSet",
) -> dict[str, Any]:
    """The initial campaign's output and the state it left behind.

    The engine's issue accounting and the looking-glass query ledger
    must travel with the traces: ``seq`` numbers derived from them key
    the per-trace RNG substreams of every *later* probe (CFS
    follow-ups), so a resume that skipped them would draw different
    noise than the uninterrupted run.
    """
    traces_issued, issue_counts = engine.issue_baseline()
    queries_per_lg, simulated_wait_s = platforms.looking_glasses.query_state()
    return {
        "traces": [
            [
                trace.source_id,
                trace.platform,
                trace.src_asn,
                trace.dst_address,
                trace.reached,
                [
                    [hop.ttl, hop.address, hop.rtt_ms, hop.router_id]
                    for hop in trace.hops
                ],
            ]
            for trace in corpus.traces
        ],
        "engine": {
            "traces_issued": traces_issued,
            "issue_counts": [
                [source_id, dst_address, count]
                for (source_id, dst_address), count in sorted(
                    issue_counts.items()
                )
            ],
        },
        "looking_glass": {
            "queries": [
                [asn, count] for asn, count in sorted(queries_per_lg.items())
            ],
            "simulated_wait_s": simulated_wait_s,
        },
    }


def decode_campaign_stage(
    payload: dict[str, Any],
    engine: "TracerouteEngine",
    platforms: "PlatformSet",
) -> TraceCorpus:
    """Rebuild the corpus and restore the engines' accounting."""
    corpus = TraceCorpus()
    corpus.extend(
        [
            Traceroute(
                source_id=source_id,
                platform=platform,
                src_asn=src_asn,
                dst_address=dst_address,
                hops=tuple(
                    TraceHop(
                        ttl=ttl,
                        address=address,
                        rtt_ms=rtt_ms,
                        router_id=router_id,
                    )
                    for ttl, address, rtt_ms, router_id in hops
                ),
                reached=reached,
            )
            for source_id, platform, src_asn, dst_address, reached, hops in (
                payload["traces"]
            )
        ]
    )
    engine_state = payload["engine"]
    engine.restore_issue_state(
        (
            int(engine_state["traces_issued"]),
            {
                (source_id, dst_address): count
                for source_id, dst_address, count in engine_state[
                    "issue_counts"
                ]
            },
        )
    )
    lg_state = payload["looking_glass"]
    platforms.looking_glasses.restore_query_state(
        (
            {asn: count for asn, count in lg_state["queries"]},
            float(lg_state["simulated_wait_s"]),
        )
    )
    return corpus


# ----------------------------------------------------------------------
# Alias sets
# ----------------------------------------------------------------------


def encode_alias_stage(alias_sets: AliasSets | None) -> dict[str, Any]:
    """Resolved alias groups (addresses as sorted lists)."""
    groups = [] if alias_sets is None else alias_sets.sets
    return {"groups": [sorted(group) for group in groups]}


def decode_alias_stage(payload: dict[str, Any]) -> AliasSets:
    """Rebuild :class:`AliasSets` from checkpointed groups."""
    return AliasSets.from_groups(
        [set(group) for group in payload["groups"]]
    )


# ----------------------------------------------------------------------
# CFS result
# ----------------------------------------------------------------------


def encode_cfs_stage(result: CfsResult) -> dict[str, Any]:
    """The final search state: interfaces, links, history, metrics.

    Interface dict order and link/history list order are preserved
    verbatim — downstream consumers (export, scoring) may iterate them,
    and a resumed run must render identical bytes.
    """
    metrics = result.metrics
    return {
        "interfaces": [
            {
                "address": state.address,
                "owner_asn": state.owner_asn,
                "candidates": (
                    None
                    if state.candidates is None
                    else sorted(state.candidates)
                ),
                "status": state.status.value,
                "inferred_type": state.inferred_type.value,
                "remote": state.remote,
                "conflicts": state.conflicts,
                "constrained_by_ixps": sorted(state.constrained_by_ixps),
                "data_health": state.data_health,
            }
            for state in result.interfaces.values()
        ],
        "links": [
            {
                "kind": link.kind.value,
                "inferred_type": link.inferred_type.value,
                "near_address": link.near_address,
                "near_asn": link.near_asn,
                "near_facility": link.near_facility,
                "far_asn": link.far_asn,
                "far_facility": link.far_facility,
                "ixp_id": link.ixp_id,
                "ixp_address": link.ixp_address,
                "far_address": link.far_address,
                "confidence": link.confidence,
            }
            for link in result.links
        ],
        "history": [
            {
                "iteration": stats.iteration,
                "total_interfaces": stats.total_interfaces,
                "resolved": stats.resolved,
                "unresolved_local": stats.unresolved_local,
                "unresolved_remote": stats.unresolved_remote,
                "missing_data": stats.missing_data,
                "followups_issued": stats.followups_issued,
                "observations_total": stats.observations_total,
                "observations_applied": stats.observations_applied,
                "traces_parsed": stats.traces_parsed,
            }
            for stats in result.history
        ],
        "iterations_run": result.iterations_run,
        "followup_traces": result.followup_traces,
        "peering_interfaces_seen": result.peering_interfaces_seen,
        "metrics": (
            None
            if metrics is None
            else {
                "counters": dict(metrics.counters),
                "stage_ns": dict(metrics.stage_ns),
                "stage_calls": dict(metrics.stage_calls),
            }
        ),
    }


def decode_cfs_stage(
    payload: dict[str, Any], alias_sets: AliasSets | None = None
) -> CfsResult:
    """Rebuild a :class:`CfsResult` from a checkpointed payload."""
    interfaces: dict[int, InterfaceState] = {}
    for entry in payload["interfaces"]:
        state = InterfaceState(
            address=entry["address"],
            owner_asn=entry["owner_asn"],
            candidates=(
                None
                if entry["candidates"] is None
                else set(entry["candidates"])
            ),
            status=InterfaceStatus(entry["status"]),
            inferred_type=InferredType(entry["inferred_type"]),
            remote=entry["remote"],
            conflicts=entry["conflicts"],
            constrained_by_ixps=set(entry["constrained_by_ixps"]),
            data_health=entry["data_health"],
        )
        interfaces[state.address] = state
    links = [
        LinkInference(
            kind=PeeringKind(entry["kind"]),
            inferred_type=InferredType(entry["inferred_type"]),
            near_address=entry["near_address"],
            near_asn=entry["near_asn"],
            near_facility=entry["near_facility"],
            far_asn=entry["far_asn"],
            far_facility=entry["far_facility"],
            ixp_id=entry["ixp_id"],
            ixp_address=entry["ixp_address"],
            far_address=entry["far_address"],
            confidence=entry["confidence"],
        )
        for entry in payload["links"]
    ]
    history = [
        IterationStats(
            iteration=entry["iteration"],
            total_interfaces=entry["total_interfaces"],
            resolved=entry["resolved"],
            unresolved_local=entry["unresolved_local"],
            unresolved_remote=entry["unresolved_remote"],
            missing_data=entry["missing_data"],
            followups_issued=entry["followups_issued"],
            observations_total=entry["observations_total"],
            observations_applied=entry["observations_applied"],
            traces_parsed=entry["traces_parsed"],
        )
        for entry in payload["history"]
    ]
    raw_metrics = payload["metrics"]
    metrics = (
        None
        if raw_metrics is None
        else MetricsSnapshot(
            counters=dict(raw_metrics["counters"]),
            stage_ns=dict(raw_metrics["stage_ns"]),
            stage_calls=dict(raw_metrics["stage_calls"]),
        )
    )
    return CfsResult(
        interfaces=interfaces,
        links=links,
        history=history,
        iterations_run=payload["iterations_run"],
        followup_traces=payload["followup_traces"],
        peering_interfaces_seen=payload["peering_interfaces_seen"],
        metrics=metrics,
        alias_sets=alias_sets,
    )
