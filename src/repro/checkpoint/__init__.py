"""Crash-safe checkpoint/resume for the pipeline.

Three layers, smallest first:

* :mod:`repro.checkpoint.atomic` — durable write-temp-fsync-rename
  file replacement (the only way checkpoint bytes reach disk; reprolint
  rule R008 enforces it);
* :mod:`repro.checkpoint.store` — :class:`CheckpointStore`, a versioned
  manifest plus checksummed per-stage files, where every corruption
  mode degrades to "recompute with a warning", never a crash;
* :mod:`repro.checkpoint.stages` — exact round-trip codecs between
  pipeline state (trace corpus + measurement accounting, alias sets,
  CFS result) and JSON-safe stage payloads.

``run_pipeline(..., checkpoint_dir=...)`` writes stages as they
complete; ``resume=True`` loads every intact stage and recomputes the
rest, producing output byte-identical to an uninterrupted run (the
tier-1 gate in ``tests/core/test_resume.py``).
"""

from .atomic import (
    atomic_write_bytes,
    atomic_write_json,
    canonical_json,
    sha256_hex,
)
from .stages import (
    decode_alias_stage,
    decode_campaign_stage,
    decode_cfs_stage,
    encode_alias_stage,
    encode_campaign_stage,
    encode_cfs_stage,
    encode_topology_stage,
)
from .store import CheckpointStore, config_fingerprint

__all__ = [
    "CheckpointStore",
    "atomic_write_bytes",
    "atomic_write_json",
    "canonical_json",
    "config_fingerprint",
    "decode_alias_stage",
    "decode_campaign_stage",
    "decode_cfs_stage",
    "encode_alias_stage",
    "encode_campaign_stage",
    "encode_cfs_stage",
    "encode_topology_stage",
    "sha256_hex",
]
