"""Versioned checkpoint store: one manifest, one file per stage.

Layout of a checkpoint directory::

    manifest.json        # schema, config fingerprint, stage index
    stage-topology.json  # per-stage payloads, one file each
    stage-campaign.json
    ...

The manifest carries a sha256 checksum and byte count for every stage
file; :meth:`CheckpointStore.load_stage` re-hashes the file before
trusting it.  **Corruption never crashes a resume** — a missing file, a
checksum mismatch, undecodable JSON, an unknown schema, or a manifest
written for a different configuration all degrade to "stage absent":
the pipeline recomputes that stage (deterministically, so the result is
byte-identical to what the checkpoint held) and overwrites the bad
file.  Every degradation is reported through the ``warn`` callback and
the ``checkpoint.corrupt`` event.

Writes go through :mod:`repro.checkpoint.atomic` exclusively (reprolint
rule R008), and the manifest is rewritten after each stage write, so
the on-disk state is consistent after any prefix of the run.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Callable

from ..obs import Instrumentation
from .atomic import (
    atomic_write_bytes,
    atomic_write_json,
    canonical_json,
    sha256_hex,
)

__all__ = ["CheckpointStore", "config_fingerprint"]

MANIFEST_SCHEMA = "repro/checkpoint-manifest/1"
STAGE_SCHEMA = "repro/checkpoint-stage/1"
MANIFEST_NAME = "manifest.json"

#: ``PipelineConfig`` fields that do not affect pipeline output.  The
#: fingerprint ignores them so a run checkpointed at ``workers=1`` can
#: resume at ``workers=4`` (the executor's byte-identity guarantee) and
#: supervision knobs can change between attempts.
TRANSIENT_CONFIG_FIELDS = (
    "workers",
    "checkpoint_dir",
    "resume",
    "shard_timeout_s",
    "max_shard_retries",
    "sanitize",
)


def config_fingerprint(config: Any) -> str:
    """Digest of every output-affecting field of a ``PipelineConfig``.

    Two configs with equal fingerprints produce byte-identical
    pipelines, so a checkpoint written under one is valid under the
    other.  Transient fields (worker count, supervision and checkpoint
    knobs) are excluded; everything else — topology, seed, campaign,
    CFS, dataset and fault knobs — participates.
    """
    document = dataclasses.asdict(config)
    for name in TRANSIENT_CONFIG_FIELDS:
        document.pop(name, None)
    return sha256_hex(canonical_json(_jsonable(document)))


def _jsonable(value: Any) -> Any:
    """Recursively coerce a config tree into JSON-encodable values."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class CheckpointStore:
    """Reads and writes one run's checkpoint directory."""

    def __init__(
        self,
        root: str | Path,
        fingerprint: str,
        instrumentation: Instrumentation | None = None,
        warn: Callable[[str], None] | None = None,
    ) -> None:
        """Args:
            root: checkpoint directory (created if missing).
            fingerprint: the run's :func:`config_fingerprint`; a
                manifest written under a different fingerprint is
                discarded with a warning.
            instrumentation: sink for ``checkpoint.*`` events/counters.
            warn: callback for human-readable degradation notices
                (``None`` keeps them only on :attr:`warnings`).
        """
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fingerprint = fingerprint
        self._obs = instrumentation or Instrumentation()
        self._warn_cb = warn
        #: Every degradation notice raised by this store, in order.
        self.warnings: list[str] = []
        self._stages: dict[str, dict[str, Any]] = self._load_manifest()

    # ------------------------------------------------------------------

    def _warn(self, message: str) -> None:
        self.warnings.append(message)
        if self._warn_cb is not None:
            self._warn_cb(message)

    def _corrupt(self, stage: str, message: str) -> None:
        self._obs.count("checkpoint.corrupt")
        self._obs.emit("checkpoint.corrupt", stage=stage, detail=message)
        self._warn(f"checkpoint: {message}; will recompute")

    def _load_manifest(self) -> dict[str, dict[str, Any]]:
        path = self.root / MANIFEST_NAME
        if not path.exists():
            return {}
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            self._corrupt("manifest", f"unreadable manifest {path}: {error}")
            return {}
        if not isinstance(document, dict) or document.get("schema") != MANIFEST_SCHEMA:
            self._corrupt(
                "manifest",
                f"manifest {path} has unknown schema "
                f"{document.get('schema') if isinstance(document, dict) else None!r}",
            )
            return {}
        if document.get("fingerprint") != self.fingerprint:
            self._corrupt(
                "manifest",
                f"manifest {path} was written for a different configuration",
            )
            return {}
        stages = document.get("stages")
        if not isinstance(stages, dict):
            self._corrupt("manifest", f"manifest {path} has no stage index")
            return {}
        return {str(name): dict(entry) for name, entry in stages.items()}

    def _write_manifest(self) -> None:
        atomic_write_json(
            self.root / MANIFEST_NAME,
            {
                "schema": MANIFEST_SCHEMA,
                "fingerprint": self.fingerprint,
                "stages": self._stages,
            },
        )

    # ------------------------------------------------------------------

    def has_stage(self, name: str) -> bool:
        """Whether the manifest lists ``name`` (content not yet verified)."""
        return name in self._stages

    def stage_digest(self, name: str) -> str | None:
        """The manifest's sha256 for ``name`` (``None`` when absent).

        The map service publishes this digest as each snapshot's
        *watermark*: equal digests mean byte-identical durable payloads,
        so two service runs (or a resume) can be compared without
        re-reading the stage files.
        """
        entry = self._stages.get(name)
        if entry is None:
            return None
        digest = entry.get("sha256")
        return str(digest) if digest is not None else None

    def write_stage(self, name: str, payload: Any) -> None:
        """Durably persist one stage payload and index it in the manifest."""
        file_name = f"stage-{name}.json"
        data = canonical_json(
            {"schema": STAGE_SCHEMA, "stage": name, "payload": payload}
        )
        atomic_write_bytes(self.root / file_name, data)
        self._stages[name] = {
            "file": file_name,
            "sha256": sha256_hex(data),
            "bytes": len(data),
        }
        self._write_manifest()
        self._obs.count("checkpoint.write")
        self._obs.emit("checkpoint.write", stage=name, bytes=len(data))

    def load_stage(self, name: str) -> Any | None:
        """One stage's payload, or ``None`` when absent or corrupt.

        The file is re-hashed against the manifest checksum before any
        byte of it is trusted; every failure mode degrades to ``None``
        (recompute), never an exception.
        """
        entry = self._stages.get(name)
        if entry is None:
            return None
        path = self.root / str(entry.get("file", f"stage-{name}.json"))
        try:
            data = path.read_bytes()
        except OSError as error:
            self._drop_stage(name, f"stage {name!r} unreadable: {error}")
            return None
        if sha256_hex(data) != entry.get("sha256"):
            self._drop_stage(
                name, f"stage {name!r} failed checksum verification"
            )
            return None
        try:
            document = json.loads(data.decode("utf-8"))
        except ValueError as error:
            self._drop_stage(name, f"stage {name!r} is not valid JSON: {error}")
            return None
        if (
            not isinstance(document, dict)
            or document.get("schema") != STAGE_SCHEMA
            or document.get("stage") != name
        ):
            self._drop_stage(name, f"stage {name!r} has an unknown layout")
            return None
        self._obs.count("checkpoint.load")
        self._obs.emit("checkpoint.load", stage=name, bytes=len(data))
        return document.get("payload")

    def _drop_stage(self, name: str, message: str) -> None:
        self._corrupt(name, message)
        self._stages.pop(name, None)
        self._write_manifest()

    def drop_stage(self, name: str) -> bool:
        """Intentionally retire one stage (manifest entry and file).

        Unlike the corruption path this emits no ``checkpoint.corrupt``
        event — the caller chose to delete the stage (a retention ring
        rotating out an old snapshot, a publish rolling back a torn
        write), nothing degraded.  Returns whether the stage existed.
        """
        entry = self._stages.pop(name, None)
        if entry is None:
            return False
        path = self.root / str(entry.get("file", f"stage-{name}.json"))
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass
        self._write_manifest()
        return True

    def invalidate(self, reason: str) -> None:
        """Discard every stage (e.g. the topology no longer matches)."""
        if self._stages:
            self._warn(f"checkpoint: {reason}; discarding all stages")
        self._stages = {}
        self._write_manifest()
