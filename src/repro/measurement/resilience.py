"""Resilience primitives for the campaign driver.

Production measurement against the real Internet is an exercise in
failure management: probes time out, vantage points disappear, looking
glasses rate-limit.  The campaign driver wraps every live probe with

* :class:`RetryPolicy` — bounded retry with exponential backoff and
  deterministic jitter (time is *simulated*, accumulated in
  ``CampaignDriver.simulated_backoff_s``, mirroring how the looking
  glasses account their 60 s inter-query pauses);
* :class:`CircuitBreaker` — per-platform breakers that quarantine a
  vantage point after consecutive failures, with a half-open retry
  after a simulated cooldown;
* :class:`ProbeBudget` — accounting (and an optional hard cap) of
  probes spent, retried, failed, and skipped.

All three are dependency-free so tests can exercise them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

__all__ = ["RetryPolicy", "CircuitBreaker", "ProbeBudget", "ResilienceConfig"]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and jitter."""

    #: Total attempts per probe (1 = no retries).
    max_attempts: int = 3
    #: Backoff before the first retry (simulated seconds).
    base_backoff_s: float = 1.0
    #: Growth factor per subsequent retry.
    backoff_multiplier: float = 2.0
    #: Uniform jitter as a fraction of the backoff (avoids retry herds).
    jitter_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_backoff_s < 0:
            raise ValueError("base_backoff_s must not be negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be at least 1")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")

    def backoff_s(self, attempt: int, rng: Random | None = None) -> float:
        """Backoff after failed attempt ``attempt`` (0-based), jittered.

        ``rng`` supplies the jitter draw; ``None`` (or a zero jitter
        fraction) yields the deterministic midpoint.
        """
        backoff = self.base_backoff_s * self.backoff_multiplier**attempt
        if rng is None or self.jitter_fraction <= 0:
            return backoff
        return backoff * (
            1.0 + rng.uniform(-self.jitter_fraction, self.jitter_fraction)
        )


class CircuitBreaker:
    """Consecutive-failure breaker over string keys (vantage points).

    Closed (normal) → ``failure_threshold`` consecutive failures open
    the breaker for ``cooldown_s`` of simulated time → half-open: one
    trial call is allowed; success closes the breaker, failure re-opens
    it for another cooldown.  Time advances only through
    :meth:`advance` (the driver feeds it the simulated backoff), so the
    breaker is deterministic and wall-clock free.
    """

    def __init__(
        self, failure_threshold: int = 4, cooldown_s: float = 300.0
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._now = 0.0
        self._failures: dict[str, int] = {}
        self._opened_at: dict[str, float] = {}
        #: Keys ever quarantined (for reporting).
        self.tripped: set[str] = set()

    def advance(self, seconds: float) -> None:
        """Advance simulated time (cooldowns elapse against this clock)."""
        self._now += seconds

    def is_open(self, key: str) -> bool:
        """True while ``key`` is quarantined (cooldown not yet elapsed)."""
        opened = self._opened_at.get(key)
        if opened is None:
            return False
        if self._now - opened >= self.cooldown_s:
            # Half-open: allow a trial; the verdict re-opens or closes.
            return False
        return True

    def record_success(self, key: str) -> None:
        """A call through ``key`` succeeded: close and reset."""
        self._failures.pop(key, None)
        self._opened_at.pop(key, None)

    def record_failure(self, key: str) -> bool:
        """A call through ``key`` failed; returns True if this opened it."""
        count = self._failures.get(key, 0) + 1
        self._failures[key] = count
        if count < self.failure_threshold:
            return False
        newly = key not in self._opened_at
        self._opened_at[key] = self._now
        self.tripped.add(key)
        return newly

    def open_keys(self) -> tuple[str, ...]:
        """Keys currently quarantined, sorted.

        A sorted tuple rather than a raw set: callers iterate this into
        reports and event payloads, and set order would leak hash/
        insertion history into those outputs (reprolint R003).
        """
        return tuple(
            sorted(key for key in self._opened_at if self.is_open(key))
        )


@dataclass(slots=True)
class ProbeBudget:
    """Accounting of probe spend across a campaign.

    ``max_probes`` (optional) is a hard cap on attempts — once spent,
    further probes are skipped and counted, never silently dropped.
    """

    max_probes: int | None = None
    #: Probe attempts actually issued (retries included).
    attempts: int = 0
    #: Attempts that were retries of a failed probe.
    retried: int = 0
    #: Probes abandoned after exhausting their attempts.
    failed: int = 0
    #: Probes skipped because the vantage point was quarantined.
    skipped_quarantined: int = 0
    #: Probes skipped because the budget was exhausted.
    skipped_budget: int = 0

    #: The accounting buckets (every field except the cap itself).
    COUNT_FIELDS = (
        "attempts",
        "retried",
        "failed",
        "skipped_quarantined",
        "skipped_budget",
    )

    def allow(self) -> bool:
        """True while another attempt fits in the budget."""
        return self.max_probes is None or self.attempts < self.max_probes

    def as_dict(self) -> dict[str, int | None]:
        """JSON-ready rendering."""
        return {
            "max_probes": self.max_probes,
            "attempts": self.attempts,
            "retried": self.retried,
            "failed": self.failed,
            "skipped_quarantined": self.skipped_quarantined,
            "skipped_budget": self.skipped_budget,
        }

    def check(self) -> None:
        """Assert the hard cap was honoured (post-campaign invariant).

        ``allow()`` is consulted before every attempt, so ``attempts``
        can never legitimately exceed ``max_probes``; an overrun means
        an accounting bug (e.g. a merge applied twice) and raises.
        """
        if self.max_probes is not None and self.attempts > self.max_probes:
            raise RuntimeError(
                f"probe budget overrun: {self.attempts} attempts issued "
                f"against max_probes={self.max_probes}"
            )

    # -- sharded-execution merge support -------------------------------

    def counts(self) -> dict[str, int]:
        """The accounting buckets as a plain dict (shard baseline)."""
        return {name: getattr(self, name) for name in self.COUNT_FIELDS}

    def deltas_since(self, baseline: dict[str, int]) -> dict[str, int]:
        """Bucket growth since a :meth:`counts` baseline (worker side)."""
        return {
            name: getattr(self, name) - baseline[name]
            for name in self.COUNT_FIELDS
            if getattr(self, name) != baseline[name]
        }

    def restore(self, baseline: dict[str, int]) -> None:
        """Rewind the buckets to a :meth:`counts` baseline."""
        for name in self.COUNT_FIELDS:
            setattr(self, name, baseline[name])

    def absorb(self, deltas: dict[str, int]) -> None:
        """Fold a shard's bucket deltas in (parent side)."""
        for name, delta in deltas.items():
            setattr(self, name, getattr(self, name) + delta)


@dataclass(frozen=True, slots=True)
class ResilienceConfig:
    """Everything the campaign driver needs to survive a hostile substrate."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Consecutive failures before a vantage point is quarantined.
    breaker_failure_threshold: int = 4
    #: Simulated seconds a quarantined vantage point sits out.
    breaker_cooldown_s: float = 300.0
    #: Optional hard cap on probe attempts per driver (None = unlimited).
    max_probes: int | None = None
