"""Round-trip-time synthesis for traceroute hops.

RTTs matter to the pipeline in one place: remote-peering detection
(Section 4.2 uses the delay-based method of Castro et al. [14]).  A
router that holds an IXP peering-LAN address but sits in a building far
from the exchange shows an RTT step incompatible with metro-local
forwarding; repeated measurements at different times of day filter out
transient congestion.

The model: RTT to hop *k* is twice the accumulated great-circle
propagation delay along the forward router path, plus a fixed per-hop
processing cost, plus non-negative jitter (occasionally a heavy
"congestion spike", which is why the detector takes the minimum over
repeated samples).
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from ..topology.geo import GeoLocation, propagation_delay_ms

__all__ = ["RttModel", "RttConfig"]


@dataclass(frozen=True, slots=True)
class RttConfig:
    """Knobs of the delay model."""

    #: Fixed per-router forwarding/queueing cost (ms, one-way).
    per_hop_processing_ms: float = 0.08
    #: Upper bound of uniform measurement jitter added per sample (ms).
    jitter_ms: float = 0.5
    #: Probability a single sample is inflated by transient congestion.
    congestion_prob: float = 0.05
    #: Maximum congestion inflation (ms).
    congestion_ms: float = 40.0
    #: Baseline local-loop delay at the vantage point (ms).
    access_ms: float = 1.0


class RttModel:
    """Synthesises per-hop RTT samples from geographic router paths."""

    def __init__(self, config: RttConfig | None = None, seed: int = 0) -> None:
        self.config = config or RttConfig()
        self._rng = Random(seed)

    def path_rtt_ms(self, locations: list[GeoLocation]) -> float:
        """Deterministic base RTT along an ordered location path.

        ``locations`` is the geographic position of the source followed
        by every router up to and including the responding hop.
        """
        one_way = self.config.access_ms / 2.0
        for here, there in zip(locations, locations[1:]):
            one_way += self.step_one_way_ms(here, there)
        return 2.0 * one_way

    def sample_rtt_ms(self, locations: list[GeoLocation]) -> float:
        """One noisy RTT sample along the path (base + jitter + spikes)."""
        one_way = self.config.access_ms / 2.0
        for here, there in zip(locations, locations[1:]):
            one_way += self.step_one_way_ms(here, there)
        return self.sample_from_one_way(one_way)

    def step_one_way_ms(self, here: GeoLocation, there: GeoLocation) -> float:
        """One-way cost of extending a path by one router hop."""
        return (
            propagation_delay_ms(here.distance_km(there))
            + self.config.per_hop_processing_ms
        )

    def sample_from_one_way(
        self, one_way_ms: float, rng: Random | None = None
    ) -> float:
        """One noisy RTT sample given an accumulated one-way base.

        The traceroute engine accumulates the base incrementally along
        the path, so per-hop sampling stays O(1).  ``rng`` selects the
        jitter stream; the engine passes its keyed per-trace substream
        so a trace's noise never depends on unrelated probes, and
        ``None`` falls back to the model's own sequential stream.
        """
        draw = self._rng if rng is None else rng
        rtt = 2.0 * one_way_ms
        rtt += draw.uniform(0.0, self.config.jitter_ms)
        if draw.random() < self.config.congestion_prob:
            rtt += draw.uniform(0.0, self.config.congestion_ms)
        return rtt

    def metro_local_bound_ms(self) -> float:
        """Upper bound on the RTT step between two hops in one metro.

        Used by the remote-peering detector: a step larger than this, in
        *every* repeated sample, is incompatible with the far hop being
        in the same metropolitan area as the near hop.
        """
        # Metro diameter is bounded by the grouping radius; allow fabric
        # transit plus processing and jitter headroom.
        metro_ms = 2.0 * (propagation_delay_ms(60.0) + 3 * self.config.per_hop_processing_ms)
        return metro_ms + self.config.jitter_ms + 1.0
