"""Measurement substrate: traceroute, RTTs, IP-ID probing, platforms.

Everything the inference pipeline is allowed to *observe* comes through
this subpackage: traceroute hops with RTTs, IP-ID probe trains for alias
resolution, and the four vantage-point platforms of Table 1.
"""

from .campaign import CampaignConfig, CampaignDriver, Hitlist, TraceCorpus
from .ipid import IPID_MODULUS, IpidResponder
from .platforms import (
    ArchivePlatform,
    AtlasPlatform,
    LookingGlassPlatform,
    MeasurementPlatform,
    PlatformSet,
    PlatformStats,
    VantagePoint,
    build_platforms,
)
from .resilience import (
    CircuitBreaker,
    ProbeBudget,
    ResilienceConfig,
    RetryPolicy,
)
from .rtt import RttConfig, RttModel
from .traceroute import TraceHop, Traceroute, TracerouteConfig, TracerouteEngine

__all__ = [
    "ArchivePlatform",
    "AtlasPlatform",
    "build_platforms",
    "CampaignConfig",
    "CampaignDriver",
    "CircuitBreaker",
    "Hitlist",
    "ProbeBudget",
    "ResilienceConfig",
    "RetryPolicy",
    "IPID_MODULUS",
    "IpidResponder",
    "LookingGlassPlatform",
    "MeasurementPlatform",
    "PlatformSet",
    "PlatformStats",
    "RttConfig",
    "RttModel",
    "TraceCorpus",
    "TraceHop",
    "Traceroute",
    "TracerouteConfig",
    "TracerouteEngine",
    "VantagePoint",
]
