"""Traceroute engine over the generated topology.

The engine reproduces the observable behaviour the paper's method
depends on (Sections 3.2, 4.1, 4.3):

* hop *k* is answered by the *k*-th router on the forwarding path, from
  the **ingress** interface — the interface facing the previous hop.
  Crossing a public peering therefore records the far router's IXP-LAN
  address, and crossing a private interconnect records the far router's
  point-to-point address (possibly numbered out of the *near* AS's
  space);
* the egress interfaces of routers are invisible, which is why CFS needs
  the reverse-direction search and the proximity heuristic;
* hops are occasionally unresponsive (``None`` address, rendered ``*``);
* per-hop RTTs follow geographic propagation plus jitter, so a remote
  peer's IXP-LAN hop shows a delay step incompatible with the exchange's
  metro.

We model ICMP Paris traceroute: forwarding in the substrate is
deterministic per flow, so the load-balancing artefacts Paris traceroute
exists to suppress never arise and a single pass per target suffices.

Observable noise (hop loss, RTT jitter) is drawn from a **keyed
per-trace substream** — ``substream("trace", seed, source_id, dst,
seq)`` where ``seq`` counts prior issues of the same (source, target)
pair — never from a shared sequential stream.  A trace's bytes are a
pure function of the engine seed and the probe's identity, independent
of how many unrelated probes ran before it, which is what lets the
parallel campaign executor shard probes freely and still merge
byte-identical output (see :mod:`repro.exec`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..columnar import TraceArrays
from ..exec.shard import substream
from ..sanitize import assert_rng
from ..topology.geo import GeoLocation
from ..topology.network import InterfaceKind
from ..topology.routing import Forwarder
from ..topology.topology import Topology
from .rtt import RttModel

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..faults.injector import FaultInjector

__all__ = [
    "TraceHop",
    "Traceroute",
    "TracerouteConfig",
    "TracerouteEngine",
    "flatten_traces",
    "rebuild_traces",
]


@dataclass(frozen=True, slots=True)
class TraceHop:
    """One line of traceroute output.

    ``address`` is ``None`` for an unresponsive hop (``*``).  The
    ground-truth ``router_id`` is carried for scoring only — inference
    code must never read it.
    """

    ttl: int
    address: int | None
    rtt_ms: float | None
    router_id: int | None = field(repr=False, default=None)


@dataclass(frozen=True, slots=True)
class Traceroute:
    """One traceroute measurement.

    Attributes:
        source_id: vantage-point identifier (platform-scoped).
        platform: name of the measurement platform.
        src_asn: AS hosting the vantage point.
        dst_address: probed destination.
        hops: recorded hops in TTL order.
        reached: whether the destination answered.
    """

    source_id: str
    platform: str
    src_asn: int
    dst_address: int
    hops: tuple[TraceHop, ...]
    reached: bool

    def responsive_addresses(self) -> list[int]:
        """Addresses of responsive hops, in path order."""
        return [hop.address for hop in self.hops if hop.address is not None]

    def hop_triples(self) -> list[tuple[TraceHop, TraceHop, TraceHop]]:
        """Consecutive responsive hop triples (for Step-1 parsing).

        Triples never span an unresponsive hop: a star hides a router,
        so adjacency across it is unknown.
        """
        triples = []
        run: list[TraceHop] = []
        for hop in self.hops:
            if hop.address is None:
                run = []
                continue
            run.append(hop)
            if len(run) >= 3:
                triples.append((run[-3], run[-2], run[-1]))
        return triples


def flatten_traces(traces) -> TraceArrays:
    """Flatten :class:`Traceroute` objects into columnar arrays.

    The measurement-layer half of the columnar codec: dataclasses in,
    :class:`repro.columnar.TraceArrays` out.  Pure and exact —
    :func:`rebuild_traces` restores field-identical objects.
    """
    return TraceArrays.from_traces(traces)


def rebuild_traces(arrays: TraceArrays) -> list[Traceroute]:
    """Rebuild :class:`Traceroute` objects from columnar arrays."""
    return arrays.rebuild_all(Traceroute, TraceHop)


@dataclass(frozen=True, slots=True)
class TracerouteConfig:
    """Observable-noise knobs of the engine."""

    #: Per-hop probability that a router drops the TTL-exceeded reply.
    hop_loss_prob: float = 0.02
    #: Maximum TTL probed before giving up.
    max_ttl: int = 30
    #: Number of RTT samples taken per hop (min is reported, mirroring
    #: how the paper repeats measurements to dodge congestion).
    rtt_samples: int = 3
    #: Paris semantics (the paper's choice, after Augustin et al.): keep
    #: the flow identifier constant so every probe of one measurement
    #: follows one ECMP path.  ``False`` models classic traceroute,
    #: whose per-TTL flow variation can stitch hops from *different*
    #: parallel paths into one output — the false-adjacency artifact.
    paris: bool = True


class TracerouteEngine:
    """Issues traceroutes from topology routers toward interface addresses."""

    def __init__(
        self,
        topology: Topology,
        forwarder: Forwarder | None = None,
        rtt_model: RttModel | None = None,
        config: TracerouteConfig | None = None,
        seed: int = 0,
        fault_injector: "FaultInjector | None" = None,
    ) -> None:
        self._topology = topology
        self._forwarder = forwarder or Forwarder(topology)
        self._rtt = rtt_model or RttModel(seed=seed)
        self.config = config or TracerouteConfig()
        self._seed = seed
        self.traces_issued = 0
        #: Issue counter per (source_id, dst_address): the ``seq`` part
        #: of the per-trace RNG substream key, so a re-probe of the same
        #: pair (retries, follow-ups) draws fresh but deterministic
        #: noise.
        self._issue_counts: dict[tuple[str, int], int] = {}
        #: Optional chaos layer; every finished trace passes through its
        #: :meth:`~repro.faults.injector.FaultInjector.perturb_trace`.
        self.fault_injector = fault_injector

    @staticmethod
    def _flow_id(src_router: int, dst_address: int, probe: int) -> int:
        """The ECMP-relevant flow identity of one probe."""
        return hash((src_router, dst_address, probe)) & 0xFFFF

    @property
    def topology(self) -> Topology:
        """The ground-truth topology probes run over."""
        return self._topology

    @property
    def forwarder(self) -> Forwarder:
        """The forwarding-path expander in use."""
        return self._forwarder

    def _finish(self, trace: Traceroute) -> Traceroute:
        """Route one finished trace through the fault injector, if any."""
        if self.fault_injector is None:
            return trace
        return self.fault_injector.perturb_trace(trace)

    # ------------------------------------------------------------------
    # Issue accounting (sharded-execution merge support)
    # ------------------------------------------------------------------

    def issue_baseline(self) -> tuple[int, dict[tuple[str, int], int]]:
        """Snapshot of the probe-issue accounting.

        A shard worker captures this before executing its tasks and
        derives deltas afterwards (:meth:`issue_deltas_since`), so the
        parent can replay the accounting without re-running the probes.
        """
        return self.traces_issued, dict(self._issue_counts)

    def issue_deltas_since(
        self, baseline: tuple[int, dict[tuple[str, int], int]]
    ) -> tuple[int, dict[tuple[str, int], int]]:
        """Issue-count growth since ``baseline`` (worker side)."""
        base_issued, base_counts = baseline
        deltas = {
            key: count - base_counts.get(key, 0)
            for key, count in self._issue_counts.items()
            if count != base_counts.get(key, 0)
        }
        return self.traces_issued - base_issued, deltas

    def restore_issue_state(
        self, baseline: tuple[int, dict[tuple[str, int], int]]
    ) -> None:
        """Rewind the accounting to an :meth:`issue_baseline` snapshot.

        Shard workers restore their baseline after computing deltas, so
        the in-process serial fallback (which mutates the parent's
        engine directly) does not double-count once the parent absorbs
        the deltas.  In a forked child the restore is moot — the child
        exits — but running it unconditionally keeps both paths alike.
        """
        self.traces_issued = baseline[0]
        self._issue_counts = dict(baseline[1])

    def absorb_issue_deltas(
        self,
        traces_issued: int,
        issue_counts: dict[tuple[str, int], int],
    ) -> None:
        """Fold a shard's issue deltas into this engine (parent side).

        After absorbing every shard in shard-index order the engine's
        accounting equals the serial run's, so later probes (follow-up
        campaigns) derive the same ``seq`` values either way.
        """
        self.traces_issued += traces_issued
        for key, delta in issue_counts.items():
            self._issue_counts[key] = self._issue_counts.get(key, 0) + delta

    def _trace_rng(self, source_id: str, dst_address: int):
        """The keyed noise substream for one probe (and bump ``seq``)."""
        key = (source_id, dst_address)
        seq = self._issue_counts.get(key, 0)
        self._issue_counts[key] = seq + 1
        return assert_rng(
            substream("trace", self._seed, source_id, dst_address, seq),
            "trace.noise",
        )

    def trace(
        self,
        src_router: int,
        dst_address: int,
        source_id: str = "local",
        platform: str = "local",
    ) -> Traceroute:
        """Run one traceroute from ``src_router`` toward ``dst_address``.

        With Paris semantics (default) every probe shares one flow id
        and therefore one ECMP path; classic mode re-routes each TTL's
        probe independently (:meth:`_trace_classic`).
        """
        self.traces_issued += 1
        rng = self._trace_rng(source_id, dst_address)
        src = self._topology.routers[src_router]
        if not self.config.paris:
            return self._finish(
                self._trace_classic(
                    src_router, dst_address, source_id, platform, rng
                )
            )
        flow_id = self._flow_id(src_router, dst_address, 0)
        path = self._forwarder.router_path(src_router, dst_address, flow_id)
        if path is None:
            return self._finish(
                Traceroute(
                    source_id=source_id,
                    platform=platform,
                    src_asn=src.asn,
                    dst_address=dst_address,
                    hops=(),
                    reached=False,
                )
            )

        if len(path) == 1:
            # Destination address lives on the source router itself.
            hop = TraceHop(
                ttl=1,
                address=dst_address,
                rtt_ms=0.1,
                router_id=src_router,
            )
            return self._finish(
                Traceroute(
                    source_id=source_id,
                    platform=platform,
                    src_asn=src.asn,
                    dst_address=dst_address,
                    hops=(hop,),
                    reached=True,
                )
            )

        hops: list[TraceHop] = []
        here: GeoLocation = self._topology.router_location(src_router)
        one_way_ms = self._rtt.config.access_ms / 2.0
        reached = False
        # Host/server targets sit on a LAN *behind* their router: the
        # router answers TTL-expiry from its ingress interface like any
        # transit hop, and the host itself echoes one TTL later — which
        # is what keeps the final interdomain crossing observable when
        # campaigns target server addresses (Section 5's hitlists).
        dst_interface = self._topology.interfaces[dst_address]
        host_target = dst_interface.kind is InterfaceKind.HOST
        # path[0] is the source router itself; it does not appear as a hop.
        for ttl, router_hop in enumerate(path[1:], start=1):
            if ttl > self.config.max_ttl:
                break
            there = self._topology.router_location(router_hop.router_id)
            one_way_ms += self._rtt.step_one_way_ms(here, there)
            here = there
            is_last = router_hop is path[-1]
            if is_last and not host_target:
                # The destination answers the echo from the probed
                # address itself, regardless of ingress interface.
                address: int | None = dst_address
            else:
                address = router_hop.ingress_address
            if address is not None and rng.random() < self.config.hop_loss_prob:
                address = None
            rtt: float | None = None
            if address is not None:
                rtt = min(
                    self._rtt.sample_from_one_way(one_way_ms, rng=rng)
                    for _ in range(self.config.rtt_samples)
                )
            hops.append(
                TraceHop(
                    ttl=ttl,
                    address=address,
                    rtt_ms=rtt,
                    router_id=router_hop.router_id,
                )
            )
            if is_last and not host_target and address is not None:
                reached = True
        if host_target and hops and len(path) - 1 <= self.config.max_ttl:
            # The host's own echo, one hop behind its gateway router.
            one_way_ms += self._rtt.config.per_hop_processing_ms + 0.05
            rtt = min(
                self._rtt.sample_from_one_way(one_way_ms, rng=rng)
                for _ in range(self.config.rtt_samples)
            )
            hops.append(
                TraceHop(
                    ttl=hops[-1].ttl + 1,
                    address=dst_address,
                    rtt_ms=rtt,
                    router_id=path[-1].router_id,
                )
            )
            reached = True
        return self._finish(
            Traceroute(
                source_id=source_id,
                platform=platform,
                src_asn=src.asn,
                dst_address=dst_address,
                hops=tuple(hops),
                reached=reached,
            )
        )

    def _trace_classic(
        self,
        src_router: int,
        dst_address: int,
        source_id: str,
        platform: str,
        rng,
    ) -> Traceroute:
        """Classic traceroute: each TTL's probe hashes to its own flow.

        Hop *k* of the output is hop *k* of the path that probe *k*
        happened to take — which may be a *different* equal-cost path
        than its neighbours', producing the stitched-path artifacts that
        motivated Paris traceroute.
        """
        src = self._topology.routers[src_router]
        dst_interface = self._topology.interfaces.get(dst_address)
        host_target = (
            dst_interface is not None and dst_interface.kind is InterfaceKind.HOST
        )
        hops: list[TraceHop] = []
        reached = False
        for ttl in range(1, self.config.max_ttl + 1):
            flow_id = self._flow_id(src_router, dst_address, ttl)
            path = self._forwarder.router_path(
                src_router, dst_address, flow_id
            )
            if path is None:
                break
            # A host target echoes one TTL behind its gateway router; a
            # router-address target echoes in place of its final hop.
            echo_ttl = max(1, len(path) if host_target else len(path) - 1)
            if ttl >= echo_ttl:
                router_hop = path[-1]
                address: int | None = dst_address
                reached = True
            else:
                router_hop = path[ttl]
                address = router_hop.ingress_address
            if address is not None and rng.random() < self.config.hop_loss_prob:
                address = None
                reached = False if ttl >= len(path) else reached
            rtt: float | None = None
            if address is not None:
                one_way = self._rtt.config.access_ms / 2.0
                here = self._topology.router_location(src_router)
                for step in path[1 : min(ttl, len(path) - 1) + 1]:
                    there = self._topology.router_location(step.router_id)
                    one_way += self._rtt.step_one_way_ms(here, there)
                    here = there
                rtt = min(
                    self._rtt.sample_from_one_way(one_way, rng=rng)
                    for _ in range(self.config.rtt_samples)
                )
            hops.append(
                TraceHop(
                    ttl=ttl,
                    address=address,
                    rtt_ms=rtt,
                    router_id=router_hop.router_id,
                )
            )
            if reached:
                break
        return Traceroute(
            source_id=source_id,
            platform=platform,
            src_asn=src.asn,
            dst_address=dst_address,
            hops=tuple(hops),
            reached=reached,
        )

    def ingress_kind(self, address: int) -> InterfaceKind | None:
        """Ground-truth interface kind (scoring helper, not for inference)."""
        interface = self._topology.interfaces.get(address)
        return interface.kind if interface is not None else None
