"""Measurement platforms: RIPE Atlas, looking glasses, iPlane, Ark.

Section 3.2 and Table 1 of the paper describe four vantage-point
populations with very different shapes, and Figure 7 shows the shape
matters: Atlas probes (many, eyeball-hosted, Europe-skewed) converge
about twice as fast per CFS iteration, while looking glasses (fewer,
backbone-hosted, rate-limited) see 46% of interfaces Atlas never does.

We reproduce those populations over the generated topology:

* **Atlas** — probes behind home routers in access/stub networks,
  Europe-weighted; cheap to query in bulk.
* **Looking glasses** — web frontends to real routers of transit and
  access providers; one LG exposes every router ("location") of its AS;
  probing is rate-limited (60 s between queries per LG, Section 3.1);
  a small subset additionally answers BGP queries, which the validation
  layer uses to read ingress-point communities.
* **iPlane / Ark** — archived daily sweep corpora collected from small
  node populations; the pipeline mines them before issuing new probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from ..topology.asn import ASRole
from ..topology.topology import Topology
from .traceroute import Traceroute, TracerouteEngine

__all__ = [
    "VantagePoint",
    "PlatformStats",
    "MeasurementPlatform",
    "AtlasPlatform",
    "LookingGlassPlatform",
    "ArchivePlatform",
    "PlatformSet",
    "build_platforms",
]

#: Enforced pause between queries to the same looking glass (Section 3.1).
LG_QUERY_INTERVAL_S = 60.0


@dataclass(frozen=True, slots=True)
class VantagePoint:
    """One measurement vantage point."""

    vp_id: str
    platform: str
    asn: int
    router_id: int
    metro: str
    country: str
    region: str


@dataclass(frozen=True, slots=True)
class PlatformStats:
    """Table-1 row: vantage points, distinct ASNs, distinct countries."""

    platform: str
    vantage_points: int
    asns: int
    countries: int


class MeasurementPlatform:
    """Base class: a named set of vantage points bound to an engine."""

    name = "platform"

    def __init__(self, engine: TracerouteEngine, vantage_points: list[VantagePoint]) -> None:
        self._engine = engine
        self.vantage_points = vantage_points
        #: Optional chaos layer (installed on *live* platforms only;
        #: archive corpora are replayed, not probed).  When set, each
        #: probe first rolls for a transient vantage-point outage.
        self.fault_injector = None
        self._by_asn: dict[int, list[VantagePoint]] = {}
        for vp in vantage_points:
            self._by_asn.setdefault(vp.asn, []).append(vp)

    @property
    def engine(self) -> TracerouteEngine:
        """The traceroute engine behind this platform."""
        return self._engine

    def vantage_points_in(self, asn: int) -> list[VantagePoint]:
        """Vantage points hosted inside ``asn``."""
        return self._by_asn.get(asn, [])

    def trace(self, vp: VantagePoint, dst_address: int) -> Traceroute:
        """Issue one traceroute from ``vp``.

        Raises a :class:`~repro.faults.errors.MeasurementFault` when the
        chaos layer decides the vantage point is transiently down.
        """
        if self.fault_injector is not None:
            self.fault_injector.check_vp(vp)
        return self._engine.trace(
            vp.router_id, dst_address, source_id=vp.vp_id, platform=self.name
        )

    def trace_from_sample(
        self, dst_address: int, sample_size: int, rng: Random
    ) -> list[Traceroute]:
        """Traceroutes to one target from a random VP sample."""
        size = min(sample_size, len(self.vantage_points))
        sample = rng.sample(self.vantage_points, size) if size else []
        return [self.trace(vp, dst_address) for vp in sample]

    def stats(self) -> PlatformStats:
        """Table-1 style summary of this platform."""
        return PlatformStats(
            platform=self.name,
            vantage_points=len(self.vantage_points),
            asns=len({vp.asn for vp in self.vantage_points}),
            countries=len({vp.country for vp in self.vantage_points}),
        )


class AtlasPlatform(MeasurementPlatform):
    """RIPE-Atlas-like probe population."""

    name = "ripe-atlas"

    @classmethod
    def build(
        cls,
        topology: Topology,
        engine: TracerouteEngine,
        n_probes: int,
        seed: int = 0,
    ) -> "AtlasPlatform":
        """Host ``n_probes`` probes in edge networks, Europe-weighted.

        Probes attach behind a router of their host AS; several probes
        can share an AS (Table 1: 6385 probes across 2410 ASNs).
        """
        rng = Random(seed)
        hosts = [
            record
            for record in topology.ases.values()
            if record.role in (ASRole.ACCESS, ASRole.STUB, ASRole.TRANSIT)
        ]
        if not hosts:
            raise ValueError("topology has no edge networks to host probes")
        weights = []
        for record in hosts:
            weight = 3.0 if record.role is ASRole.ACCESS else 1.0
            region = topology.metros.resolve(record.home_metro).region
            if region == "Europe":
                weight *= 3.0  # the Atlas footprint skew
            weights.append(weight)
        vantage_points: list[VantagePoint] = []
        for index in range(n_probes):
            record = rng.choices(hosts, weights=weights, k=1)[0]
            router_id = rng.choice(topology.routers_of(record.asn))
            facility = topology.facilities[
                topology.routers[router_id].facility_id
            ]
            vantage_points.append(
                VantagePoint(
                    vp_id=f"atlas-{index}",
                    platform=cls.name,
                    asn=record.asn,
                    router_id=router_id,
                    metro=facility.metro,
                    country=facility.country,
                    region=facility.region,
                )
            )
        return cls(engine, vantage_points)


class LookingGlassPlatform(MeasurementPlatform):
    """Looking glasses: router-attached, rate-limited, partly BGP-capable."""

    name = "looking-glass"

    def __init__(
        self,
        engine: TracerouteEngine,
        vantage_points: list[VantagePoint],
        bgp_capable_asns: set[int],
    ) -> None:
        super().__init__(engine, vantage_points)
        self.bgp_capable_asns = bgp_capable_asns
        #: Simulated wall-clock cost of honouring per-LG rate limits.
        self.simulated_wait_s = 0.0
        self._queries_per_lg: dict[int, int] = {}

    @classmethod
    def build(
        cls, topology: Topology, engine: TracerouteEngine, seed: int = 0
    ) -> "LookingGlassPlatform":
        """One LG per AS flagged ``runs_looking_glass``; each exposes all
        of that AS's routers as selectable locations."""
        vantage_points: list[VantagePoint] = []
        bgp_capable: set[int] = set()
        for record in sorted(topology.ases.values(), key=lambda a: a.asn):
            if not record.runs_looking_glass:
                continue
            if record.lg_supports_bgp:
                bgp_capable.add(record.asn)
            for router_id in topology.routers_of(record.asn):
                facility = topology.facilities[
                    topology.routers[router_id].facility_id
                ]
                vantage_points.append(
                    VantagePoint(
                        vp_id=f"lg-{record.asn}-{router_id}",
                        platform=cls.name,
                        asn=record.asn,
                        router_id=router_id,
                        metro=facility.metro,
                        country=facility.country,
                        region=facility.region,
                    )
                )
        return cls(engine, vantage_points, bgp_capable)

    def trace(self, vp: VantagePoint, dst_address: int) -> Traceroute:
        """Traceroute with per-LG rate-limit accounting.

        The rate-limit pause is paid even when the query then fails: a
        timed-out web frontend still burned its query slot.
        """
        queries = self._queries_per_lg.get(vp.asn, 0)
        if queries:
            self.simulated_wait_s += LG_QUERY_INTERVAL_S
        self._queries_per_lg[vp.asn] = queries + 1
        if self.fault_injector is not None:
            self.fault_injector.check_looking_glass(vp.asn)
        return super().trace(vp, dst_address)

    # -- sharded-execution merge support -------------------------------

    def query_state(self) -> tuple[dict[int, int], float]:
        """Snapshot of the rate-limit accounting (shard baseline)."""
        return dict(self._queries_per_lg), self.simulated_wait_s

    def restore_query_state(self, state: tuple[dict[int, int], float]) -> None:
        """Rewind the accounting to a :meth:`query_state` snapshot."""
        queries, wait = state
        self._queries_per_lg = dict(queries)
        self.simulated_wait_s = wait

    def query_deltas_since(
        self, state: tuple[dict[int, int], float]
    ) -> dict[int, int]:
        """Per-ASN query-count growth since ``state`` (worker side)."""
        baseline = state[0]
        return {
            asn: count - baseline.get(asn, 0)
            for asn, count in self._queries_per_lg.items()
            if count != baseline.get(asn, 0)
        }

    def absorb_query_deltas(self, deltas: dict[int, int]) -> None:
        """Fold a shard's query counts in, re-deriving the rate-limit
        wait (parent side).

        The serial path pays ``LG_QUERY_INTERVAL_S`` for every query to
        an LG after its first; ``added`` queries on top of ``count``
        existing ones therefore owe the closed-form difference below,
        which keeps the merged accounting equal to the serial run's
        even when one AS's vantage points land in different shards.
        """
        for asn, added in deltas.items():
            count = self._queries_per_lg.get(asn, 0)
            total = count + added
            self.simulated_wait_s += LG_QUERY_INTERVAL_S * (
                max(0, total - 1) - max(0, count - 1)
            )
            self._queries_per_lg[asn] = total

    def bgp_route(
        self, vp: VantagePoint, dst_address: int
    ) -> tuple[list[int], list[tuple[int, str]]] | None:
        """``show ip bgp``-style query: AS path plus communities.

        The route's communities include the operator's ingress-point tag
        ``(asn, "ingress-fac:<facility_id>")`` identifying the facility
        of the border router where the route enters the LG's AS — the
        validation signal of Section 6.  Only BGP-capable LGs answer.
        """
        if vp.asn not in self.bgp_capable_asns:
            return None
        topology = self._engine.topology
        forwarder = self._engine.forwarder
        path = forwarder.router_path(vp.router_id, dst_address)
        if path is None:
            return None
        as_path: list[int] = []
        egress_facility: int | None = None
        for hop in path:
            hop_asn = topology.routers[hop.router_id].asn
            if not as_path or as_path[-1] != hop_asn:
                as_path.append(hop_asn)
            if hop_asn == vp.asn:
                egress_facility = topology.routers[hop.router_id].facility_id
        communities: list[tuple[int, str]] = []
        if egress_facility is not None:
            communities.append((vp.asn, f"ingress-fac:{egress_facility}"))
        return as_path, communities


class ArchivePlatform(MeasurementPlatform):
    """iPlane / Ark style archives: small node sets, daily random sweeps."""

    def __init__(
        self,
        name: str,
        engine: TracerouteEngine,
        vantage_points: list[VantagePoint],
    ) -> None:
        self.name = name
        super().__init__(engine, vantage_points)

    @classmethod
    def build(
        cls,
        name: str,
        topology: Topology,
        engine: TracerouteEngine,
        n_nodes: int,
        host_roles: tuple[ASRole, ...],
        seed: int = 0,
    ) -> "ArchivePlatform":
        """Instantiate an archive platform with ``n_nodes`` hosts."""
        rng = Random(seed)
        hosts = [
            record
            for record in topology.ases.values()
            if record.role in host_roles
        ]
        if not hosts:
            raise ValueError(f"no hosts for archive platform {name}")
        vantage_points: list[VantagePoint] = []
        chosen = rng.sample(hosts, min(n_nodes, len(hosts)))
        while len(chosen) < n_nodes:
            chosen.append(rng.choice(hosts))
        for index, record in enumerate(chosen):
            router_id = rng.choice(topology.routers_of(record.asn))
            facility = topology.facilities[
                topology.routers[router_id].facility_id
            ]
            vantage_points.append(
                VantagePoint(
                    vp_id=f"{name}-{index}",
                    platform=name,
                    asn=record.asn,
                    router_id=router_id,
                    metro=facility.metro,
                    country=facility.country,
                    region=facility.region,
                )
            )
        return cls(name, engine, vantage_points)

    def plan_sweep(
        self, targets: list[int], per_node: int, seed: int = 0
    ) -> list[tuple[VantagePoint, int]]:
        """Plan an archived sweep: each node gets a random target sample.

        Planning draws all of its randomness from ``Random(seed)`` up
        front, so executing the planned (vantage point, target) pairs —
        serially or sharded — touches no shared RNG state.
        """
        rng = Random(seed)
        plan: list[tuple[VantagePoint, int]] = []
        for vp in self.vantage_points:
            sample = rng.sample(targets, min(per_node, len(targets)))
            plan.extend((vp, dst) for dst in sample)
        return plan

    def collect_sweep(
        self, targets: list[int], per_node: int, seed: int = 0
    ) -> list[Traceroute]:
        """An archived sweep: each node traces a random target sample,
        mimicking the daily iPlane/Ark campaigns mined in Section 4.1."""
        return [
            self.trace(vp, dst)
            for vp, dst in self.plan_sweep(targets, per_node, seed=seed)
        ]


@dataclass(slots=True)
class PlatformSet:
    """The paper's four platforms plus Table-1 reporting."""

    atlas: AtlasPlatform
    looking_glasses: LookingGlassPlatform
    iplane: ArchivePlatform
    ark: ArchivePlatform

    def all_platforms(self) -> list[MeasurementPlatform]:
        """The four platforms as a list."""
        return [self.atlas, self.looking_glasses, self.iplane, self.ark]

    def table1(self) -> list[PlatformStats]:
        """Per-platform rows plus the unique-total row of Table 1."""
        rows = [platform.stats() for platform in self.all_platforms()]
        all_vps = [
            vp for platform in self.all_platforms() for vp in platform.vantage_points
        ]
        rows.append(
            PlatformStats(
                platform="total-unique",
                vantage_points=len({vp.vp_id for vp in all_vps}),
                asns=len({vp.asn for vp in all_vps}),
                countries=len({vp.country for vp in all_vps}),
            )
        )
        return rows


def build_platforms(
    topology: Topology,
    engine: TracerouteEngine,
    seed: int = 0,
    atlas_probes: int | None = None,
    iplane_nodes: int | None = None,
    ark_monitors: int | None = None,
) -> PlatformSet:
    """Build all four platforms with footprints scaled to the topology.

    Default sizes keep the Table-1 proportions: Atlas dwarfs the others
    in vantage points and AS coverage, while iPlane and Ark contribute
    small archived populations.
    """
    n_ases = len(topology.ases)
    atlas_probes = atlas_probes if atlas_probes is not None else max(30, int(n_ases * 1.8))
    iplane_nodes = iplane_nodes if iplane_nodes is not None else max(5, n_ases // 18)
    ark_monitors = ark_monitors if ark_monitors is not None else max(4, n_ases // 25)
    atlas = AtlasPlatform.build(topology, engine, atlas_probes, seed=seed)
    lgs = LookingGlassPlatform.build(topology, engine, seed=seed + 1)
    iplane = ArchivePlatform.build(
        "iplane",
        topology,
        engine,
        iplane_nodes,
        host_roles=(ASRole.STUB, ASRole.ACCESS),
        seed=seed + 2,
    )
    ark = ArchivePlatform.build(
        "ark",
        topology,
        engine,
        ark_monitors,
        host_roles=(ASRole.ACCESS, ASRole.STUB, ASRole.TRANSIT),
        seed=seed + 3,
    )
    return PlatformSet(atlas=atlas, looking_glasses=lgs, iplane=iplane, ark=ark)
