"""IP-ID responder: what alias-resolution probes see on the wire.

MIDAR (Keys et al., used in Section 4.1) sends probe trains to candidate
interface addresses and applies the *monotonic bounds test*: two
addresses belong to the same router only if the interleaved IP-ID
samples are consistent with a single shared increasing counter.

This module implements the responder side.  Each router answers probes
according to its operator's :class:`~repro.topology.asn.IPIDMode`:

* ``SHARED_COUNTER`` — one velocity-limited counter for all interfaces;
  aliases are detectable.
* ``PER_INTERFACE``  — each interface gets its own counter; the bounds
  test (correctly) rejects the pair.
* ``RANDOM``         — pseudo-random IDs, rejected by the test.
* ``CONSTANT``       — always zero, unusable.
* ``UNRESPONSIVE``   — no replies at all (the Google case in the paper).

Counters advance with global virtual time so that interleaved samples
from a shared counter really are monotonic across interfaces.
"""

from __future__ import annotations

from random import Random

from ..topology.asn import IPIDMode
from ..topology.network import InterfaceKind
from ..topology.topology import Topology

__all__ = ["IpidResponder", "IPID_MODULUS"]

#: IP-ID is a 16-bit field; counters wrap.
IPID_MODULUS = 1 << 16


class IpidResponder:
    """Answers IP-ID probes for every interface of a topology."""

    def __init__(self, topology: Topology, seed: int = 0) -> None:
        self._topology = topology
        self._rng = Random(seed)
        self._clock = 0
        # Per-router shared counters and per-interface private counters
        # are created lazily; velocities model background traffic.
        # Counters accumulate as floats so that a router's characteristic
        # velocity is measurable to sub-integer precision — MIDAR's
        # velocity sieve depends on aliases exhibiting matching rates.
        self._router_counter: dict[int, float] = {}
        self._router_velocity: dict[int, float] = {}
        self._iface_counter: dict[int, float] = {}
        self._iface_velocity: dict[int, float] = {}

    def _velocity(self) -> float:
        """IP-ID increments per probe: background traffic rate.

        At least 1.0 so every probe observes a fresh IP-ID (a shared
        counter that repeated a value would wrongly fail the monotonic
        bounds test).
        """
        return self._rng.uniform(1.0, 9.0)

    def probe(self, address: int) -> int | None:
        """Send one probe to ``address``; return the IP-ID or ``None``.

        ``None`` models an unresponsive interface (no reply before the
        prober's timeout).  Every probe advances virtual time, so two
        successive probes to interfaces of the same shared-counter
        router always observe strictly increasing (mod 2^16) values.
        """
        self._clock += 1
        interface = self._topology.interfaces.get(address)
        if interface is None:
            return None
        router = self._topology.routers[interface.router_id]
        if interface.kind is InterfaceKind.HOST:
            # Servers are separate devices: their IP-ID stream tells
            # nothing about the gateway router, so MIDAR must discard
            # them rather than alias them onto the router.
            return self._rng.randrange(IPID_MODULUS)
        mode = self._topology.ases[router.asn].ipid_mode
        if mode is IPIDMode.UNRESPONSIVE:
            return None
        if mode is IPIDMode.CONSTANT:
            return 0
        if mode is IPIDMode.RANDOM:
            return self._rng.randrange(IPID_MODULUS)
        if mode is IPIDMode.PER_INTERFACE:
            counter = self._iface_counter.get(address)
            if counter is None:
                counter = float(self._rng.randrange(IPID_MODULUS))
                self._iface_velocity[address] = self._velocity()
            counter += self._iface_velocity[address]
            self._iface_counter[address] = counter
            return int(counter) % IPID_MODULUS
        # SHARED_COUNTER: one counter per router; every probe to any of
        # the router's interfaces advances the same counter.
        counter = self._router_counter.get(router.router_id)
        if counter is None:
            counter = float(self._rng.randrange(IPID_MODULUS))
            self._router_velocity[router.router_id] = self._velocity()
        counter += self._router_velocity[router.router_id]
        self._router_counter[router.router_id] = counter
        return int(counter) % IPID_MODULUS

    def probe_train(self, address: int, count: int = 3) -> list[int | None]:
        """Send ``count`` back-to-back probes to one address."""
        return [self.probe(address) for _ in range(count)]
