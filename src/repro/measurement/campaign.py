"""Campaign driving: hitlists, trace corpora, and targeted probing.

The measurement workflow of Sections 3.2 and 4.1:

1. build a hitlist of responsive addresses per target network (the paper
   uses BGP announcements, ZMap's hitlist, and content-provider white
   lists);
2. run an initial campaign toward the study targets from Atlas and the
   looking glasses, and fold in archived iPlane/Ark sweeps;
3. during CFS iterations, issue *targeted* follow-up traceroutes chosen
   to cross specific peerings (Step 4).

A :class:`TraceCorpus` accumulates every measurement; CFS re-reads it on
each iteration, so archived and fresh traces constrain inferences alike.

The initial campaign is split into **plan** and **execute** phases:
:meth:`CampaignDriver.plan_initial_campaign` draws every sampling
decision from the driver's sequential RNG up front (in exactly the
order the historical single-phase loop did), producing a list of
:class:`ProbeTask` whose execution consumes no shared randomness at
all.  That split is what makes the plan shardable: with ``workers>1``
the tasks are partitioned by (platform, vantage point) and executed on
a fork-based process pool (:mod:`repro.exec`), and the per-shard
results and accounting deltas merge back in plan order, byte-identical
to the serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from ..columnar import TraceArrays
from ..exec import (
    ExecFaultSpec,
    SupervisorConfig,
    instrument_observer,
    plan_shards,
    substream,
    supervised_map,
)
from ..faults.errors import MeasurementFault
from ..obs import Instrumentation
from ..sanitize import tag_rng
from ..topology.network import InterfaceKind
from ..topology.topology import Topology
from .platforms import MeasurementPlatform, PlatformSet, VantagePoint
from .resilience import CircuitBreaker, ProbeBudget, ResilienceConfig
from .traceroute import Traceroute, rebuild_traces

__all__ = [
    "Hitlist",
    "TraceCorpus",
    "CampaignDriver",
    "CampaignConfig",
    "ProbeTask",
]


class Hitlist:
    """Responsive target addresses per AS.

    The public-knowledge analogue of the ZMap hitlist plus per-provider
    white lists: for each AS, a set of addresses known to respond.  We
    use host/server addresses behind the AS's routers — like the content
    servers and hitlist hosts the paper targeted, probes toward them
    keep every router crossing (including the last one) observable.
    """

    def __init__(
        self,
        topology: Topology,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self._obs = instrumentation or Instrumentation()
        self._targets: dict[int, list[int]] = {}
        for asn in topology.ases:
            addresses: list[int] = []
            for router_id in topology.routers_of(asn):
                for address in topology.routers[router_id].interfaces:
                    interface = topology.interfaces[address]
                    if interface.kind is InterfaceKind.HOST:
                        addresses.append(address)
            self._targets[asn] = sorted(addresses)

    def targets_for(self, asn: int) -> list[int]:
        """Responsive addresses inside ``asn`` (may be empty).

        An ASN the hitlist has never heard of is worth surfacing — a
        campaign aimed at it will silently probe nothing — so the miss
        is counted and emitted as ``hitlist.miss``.
        """
        targets = self._targets.get(asn)
        if targets is None:
            self._obs.count("hitlist.miss")
            self._obs.emit("hitlist.miss", asn=asn)
            return []
        return targets

    def all_targets(self) -> list[int]:
        """Every known-responsive address."""
        return [addr for addrs in self._targets.values() for addr in addrs]


@dataclass(slots=True)
class TraceCorpus:
    """Accumulated traceroute measurements.

    ``traces`` is append-only (campaigns and follow-ups only ever add),
    which is what makes the lazy columnar cache sound: flattened
    prefixes never change, so :meth:`columnar` extends the arrays with
    the tail instead of re-encoding the corpus.
    """

    traces: list[Traceroute] = field(default_factory=list)
    #: Lazy columnar mirror of ``traces`` (built on first use).
    _arrays: TraceArrays | None = field(default=None, repr=False)
    #: How many leading traces ``_arrays`` already covers.
    _flattened: int = field(default=0, repr=False)

    def add(self, trace: Traceroute) -> None:
        """Append one traceroute."""
        self.traces.append(trace)

    def extend(self, traces: list[Traceroute]) -> None:
        """Append many traceroutes."""
        self.traces.extend(traces)

    def columnar(self) -> TraceArrays:
        """The corpus as flat arrays, flattened once per growth epoch.

        Amortised O(new traces): only the tail appended since the last
        call is encoded.  The returned object is shared and append-only
        — callers must treat it as read-only.
        """
        if self._arrays is None:
            self._arrays = TraceArrays()
        if self._flattened < len(self.traces):
            self._arrays.extend(self.traces[self._flattened:])
            self._flattened = len(self.traces)
        return self._arrays

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self):
        return iter(self.traces)

    def by_platform(self, platform: str) -> list[Traceroute]:
        """Subset collected by one platform."""
        return [t for t in self.traces if t.platform == platform]

    def observed_addresses(self) -> set[int]:
        """Every responsive hop address seen so far."""
        addresses: set[int] = set()
        for trace in self.traces:
            addresses.update(trace.responsive_addresses())
        return addresses


@dataclass(frozen=True, slots=True)
class CampaignConfig:
    """Probing budgets for the initial and follow-up campaigns."""

    #: Atlas probes sampled per target address in the initial campaign.
    atlas_sample_per_target: int = 25
    #: Looking-glass vantage points sampled per target address.
    lg_sample_per_target: int = 8
    #: Targets each archive node sweeps per archived dataset.
    archive_targets_per_node: int = 15
    #: Traces issued per direction in one follow-up probe.
    followup_traces: int = 4
    #: Retry/backoff, circuit-breaker, and probe-budget policy.
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)


@dataclass(frozen=True, slots=True)
class ProbeTask:
    """One planned probe of the initial campaign.

    ``index`` is the task's position in the probe plan — the corpus
    order of its trace — so shard results merge back deterministically.
    ``resilient`` live probes route through retry/breaker/budget;
    archive replays call the platform directly, as the historical sweep
    collection did.
    """

    index: int
    platform: str
    vp: VantagePoint
    dst_address: int
    resilient: bool


class CampaignDriver:
    """Issues campaigns over a :class:`PlatformSet` into a corpus."""

    def __init__(
        self,
        platforms: PlatformSet,
        hitlist: Hitlist,
        config: CampaignConfig | None = None,
        seed: int = 0,
        instrumentation: Instrumentation | None = None,
        workers: int = 1,
        supervision: SupervisorConfig | None = None,
        exec_faults: ExecFaultSpec | None = None,
    ) -> None:
        self.platforms = platforms
        self.hitlist = hitlist
        self.config = config or CampaignConfig()
        self._rng = tag_rng(Random(seed), "campaign", seed)
        self._obs = instrumentation or Instrumentation()
        #: Process-pool width for the initial campaign (1 = serial).
        self.workers = workers
        #: Supervision policy for the sharded executor (deadline,
        #: retry/quarantine bounds); defaults apply when ``None``.
        self.supervision = supervision
        #: Seeded executor-fault intensities (chaos); ``None`` = clean.
        self.exec_faults = exec_faults
        resilience = self.config.resilience
        self._retry_policy = resilience.retry
        self._breakers: dict[str, CircuitBreaker] = {}
        self.budget = ProbeBudget(max_probes=resilience.max_probes)
        #: Simulated wall-clock cost of retry backoff (like the looking
        #: glasses' ``simulated_wait_s`` — accounted, never slept).
        self.simulated_backoff_s = 0.0
        #: Jitter stream; untouched unless a probe actually fails, so
        #: fault-free runs draw nothing from it.
        self._retry_rng = substream("campaign-retry", seed)
        self._platform_by_name = {
            platform.name: platform for platform in platforms.all_platforms()
        }

    def _breaker(self, platform_name: str) -> CircuitBreaker:
        """The per-platform circuit breaker (lazily created)."""
        breaker = self._breakers.get(platform_name)
        if breaker is None:
            resilience = self.config.resilience
            breaker = CircuitBreaker(
                failure_threshold=resilience.breaker_failure_threshold,
                cooldown_s=resilience.breaker_cooldown_s,
            )
            self._breakers[platform_name] = breaker
        return breaker

    def quarantined_vantage_points(self) -> set[str]:
        """Vantage points ever quarantined by a circuit breaker."""
        return {
            vp_id
            for breaker in self._breakers.values()
            for vp_id in breaker.tripped
        }

    def _backoff(self, attempt: int) -> None:
        """Account the post-failure backoff and age the breakers."""
        pause = self._retry_policy.backoff_s(attempt, self._retry_rng)
        self.simulated_backoff_s += pause
        for breaker in self._breakers.values():
            breaker.advance(pause)

    def _resilient_trace(
        self,
        platform: MeasurementPlatform,
        vp: VantagePoint,
        dst_address: int,
    ) -> Traceroute | None:
        """One probe with retry/backoff, breaker, and budget applied.

        Returns ``None`` when the probe was skipped (quarantined vantage
        point, exhausted budget) or abandoned after its last retry; the
        campaign carries on with one trace fewer either way.
        """
        breaker = self._breaker(platform.name)
        if breaker.is_open(vp.vp_id):
            self.budget.skipped_quarantined += 1
            self._obs.count("campaign.quarantined_skips")
            return None
        for attempt in range(self._retry_policy.max_attempts):
            if not self.budget.allow():
                # Exactly one bucket per probe: a probe that never got
                # an attempt was *skipped*; one whose retries straddled
                # the cap already burned attempts and is abandoned —
                # that is a *failed* probe, not a skipped one.
                if attempt:
                    self.budget.failed += 1
                    self._obs.count("campaign.probe_gave_up")
                else:
                    self.budget.skipped_budget += 1
                self._obs.count("campaign.budget_exhausted")
                return None
            self.budget.attempts += 1
            try:
                trace = platform.trace(vp, dst_address)
            except MeasurementFault as fault:
                self._obs.count("campaign.probe_faults")
                self._obs.count(f"campaign.fault.{fault.kind}")
                if breaker.record_failure(vp.vp_id):
                    self._obs.count("campaign.vp_quarantined")
                    self._obs.emit(
                        "campaign.vp_quarantined",
                        vp=vp.vp_id,
                        platform=platform.name,
                        fault=fault.kind,
                    )
                if breaker.is_open(vp.vp_id):
                    break  # quarantined mid-probe: stop retrying it
                if attempt + 1 < self._retry_policy.max_attempts:
                    self._backoff(attempt)
                    self.budget.retried += 1
                    self._obs.count("campaign.retries")
                continue
            breaker.record_success(vp.vp_id)
            self._obs.count("campaign.probes_issued")
            return trace
        self.budget.failed += 1
        self._obs.count("campaign.probe_gave_up")
        return None

    def _trace_from_sample(
        self,
        platform: MeasurementPlatform,
        dst_address: int,
        sample_size: int,
    ) -> list[Traceroute]:
        """Resilient analogue of ``platform.trace_from_sample``.

        Draws the identical vantage-point sample from ``self._rng`` (so
        fault-free runs are byte-identical to the direct call), then
        routes each probe through :meth:`_resilient_trace`.
        """
        size = min(sample_size, len(platform.vantage_points))
        sample = self._rng.sample(platform.vantage_points, size) if size else []
        traces: list[Traceroute] = []
        for vp in sample:
            trace = self._resilient_trace(platform, vp, dst_address)
            if trace is not None:
                traces.append(trace)
        return traces

    # ------------------------------------------------------------------
    # Initial campaign: plan, execute (serial or sharded), merge
    # ------------------------------------------------------------------

    def plan_initial_campaign(
        self, target_asns: list[int], include_archives: bool = True
    ) -> list[ProbeTask]:
        """Draw every sampling decision of the initial campaign up front.

        Consumes ``self._rng`` in exactly the order the historical
        interleaved probe loop did — per target AS, per destination:
        the Atlas vantage-point sample, then the looking-glass sample,
        then one sweep seed per archive — so a planned-then-executed
        campaign is byte-identical to the old single-phase one.  The
        returned tasks carry their plan position (= corpus order) and
        need no shared randomness to execute.
        """
        cfg = self.config
        plan: list[ProbeTask] = []

        def sample_tasks(
            platform: MeasurementPlatform, dst: int, sample_size: int
        ) -> None:
            size = min(sample_size, len(platform.vantage_points))
            sample = (
                self._rng.sample(platform.vantage_points, size) if size else []
            )
            for vp in sample:
                plan.append(
                    ProbeTask(
                        index=len(plan),
                        platform=platform.name,
                        vp=vp,
                        dst_address=dst,
                        resilient=True,
                    )
                )

        for asn in target_asns:
            targets = self.hitlist.targets_for(asn)
            if not targets:
                self._obs.count("campaign.empty_hitlist")
            for dst in targets:
                sample_tasks(
                    self.platforms.atlas, dst, cfg.atlas_sample_per_target
                )
                sample_tasks(
                    self.platforms.looking_glasses,
                    dst,
                    cfg.lg_sample_per_target,
                )
        sweep_targets = self.hitlist.all_targets()
        if sweep_targets and include_archives:
            for archive in (self.platforms.iplane, self.platforms.ark):
                seed = self._rng.randrange(2**30)
                for vp, dst in archive.plan_sweep(
                    sweep_targets, cfg.archive_targets_per_node, seed=seed
                ):
                    plan.append(
                        ProbeTask(
                            index=len(plan),
                            platform=archive.name,
                            vp=vp,
                            dst_address=dst,
                            resilient=False,
                        )
                    )
        return plan

    def _execute_task(self, task: ProbeTask) -> Traceroute | None:
        """Run one planned probe (no shared RNG; safe in any order)."""
        platform = self._platform_by_name[task.platform]
        if task.resilient:
            return self._resilient_trace(platform, task.vp, task.dst_address)
        return platform.trace(task.vp, task.dst_address)

    def _can_parallel(self, n_tasks: int) -> bool:
        """Whether the initial campaign may run on the process pool.

        Two campaign features are inherently sequential and force the
        serial path (counted, so fallbacks are observable): a global
        probe-attempt cap, where each probe's fate depends on every
        probe before it, and installed *probe-level* fault injection
        (hop loss, truncation, outages, LG misbehaviour), whose failure
        draws come from sequential per-run streams.  Executor-level
        faults (``worker_crash``/``worker_hang``) are keyed per shard
        attempt and deliberately do NOT force serial — exercising the
        supervisor under parallelism is their purpose.
        """
        if self.workers <= 1 or n_tasks < 2:
            return False
        if self.budget.max_probes is not None:
            self._obs.count("exec.fallback.budget_capped")
            return False
        injectors = [self.platforms.atlas.engine.fault_injector]
        injectors.extend(
            platform.fault_injector
            for platform in self.platforms.all_platforms()
        )
        if any(
            injector is not None and injector.plan.perturbs_probes
            for injector in injectors
        ):
            self._obs.count("exec.fallback.faults_installed")
            return False
        return True

    def _execute_plan_sharded(
        self, plan: list[ProbeTask]
    ) -> list[Traceroute | None]:
        """Execute the probe plan on the process pool and merge.

        Tasks shard by (platform, vantage point) — a stable key, so the
        partition is identical on every run — and results slot back into
        plan positions, so the merged list equals the serial one however
        shards interleave.  Accounting (probe issues, LG rate limits,
        budget buckets, metrics) comes back as per-shard deltas and is
        folded in shard-index order.

        Execution is supervised: a shard whose worker dies or hangs is
        retried on a rebuilt pool and quarantined to serial in-process
        execution past the retry bound, landing in the same plan slots
        either way (see :mod:`repro.exec.supervise`).
        """
        shards = plan_shards(
            plan,
            self.workers,
            key=lambda task: f"{task.platform}:{task.vp.vp_id}",
        )
        self._obs.count("exec.campaign.shards", len(shards))
        # Each payload is just the shard's plan positions: the plan
        # itself rides into the forked children as copy-on-write context,
        # so submission pickles a few index tuples, not ProbeTask lists.
        payloads = [shard.item_indices for shard in shards]
        shard_results = supervised_map(
            _run_campaign_shard,
            payloads,
            workers=self.workers,
            context=(self, plan),
            config=self.supervision,
            faults=self.exec_faults,
            fallback=lambda reason: self._obs.count(f"exec.fallback.{reason}"),
            observer=instrument_observer(self._obs),
            describe=lambda indices: (
                f"campaign shard of {len(indices)} probes"
            ),
        )
        results: list[Traceroute | None] = [None] * len(plan)
        engine = self.platforms.atlas.engine
        for result in shard_results:
            # Traces come back columnar; rebuild preserves shard order,
            # and "indices" names the plan slot of each rebuilt trace.
            for index, trace in zip(
                result["indices"], rebuild_traces(result["traces"])
            ):
                results[index] = trace
            issued, issue_deltas = result["engine"]
            engine.absorb_issue_deltas(issued, issue_deltas)
            self.platforms.looking_glasses.absorb_query_deltas(
                result["lg_queries"]
            )
            self.budget.absorb(result["budget"])
            self._obs.absorb(result["metrics"])
        return results

    def execute_plan(self, plan: list[ProbeTask]) -> list[Traceroute | None]:
        """Execute planned probes, parallel when safe, serial otherwise.

        Tasks carry their own sampling decisions and consume no shared
        randomness, so any contiguous split of a plan executed slice by
        slice — the streaming service's epochs — produces exactly the
        traces the one-shot execution would.  Results keep plan order;
        unresponsive probes come back as ``None``.
        """
        if self._can_parallel(len(plan)):
            return self._execute_plan_sharded(plan)
        return [self._execute_task(task) for task in plan]

    def initial_campaign(
        self, target_asns: list[int], include_archives: bool = True
    ) -> TraceCorpus:
        """The Section-5 style campaign toward the study targets, with
        archived iPlane/Ark sweeps folded in (Section 4.1).

        ``include_archives=False`` skips the archived sweeps — useful
        when campaigns toward individual targets are accumulated
        incrementally and the archives should be counted once.

        With ``workers > 1`` (and no budget cap or fault injection) the
        planned probes execute on a fork-based process pool; the merged
        corpus is byte-identical to the serial run's.
        """
        plan = self.plan_initial_campaign(target_asns, include_archives)
        results = self.execute_plan(plan)
        corpus = TraceCorpus()
        corpus.extend([trace for trace in results if trace is not None])
        self._obs.count("campaign.initial_traces", len(corpus))
        self._obs.emit(
            "campaign.initial",
            targets=len(target_asns),
            traces=len(corpus),
            archives=include_archives,
        )
        self.budget.check()
        self._obs.emit("campaign.budget", **self.budget.as_dict())
        return corpus

    # ------------------------------------------------------------------
    # Follow-up probing (CFS Step 4)
    # ------------------------------------------------------------------

    def _vps_in(self, asn: int, platforms: list[MeasurementPlatform]) -> list[VantagePoint]:
        vps: list[VantagePoint] = []
        for platform in platforms:
            vps.extend(platform.vantage_points_in(asn))
        return vps

    def probe_peering(
        self,
        near_asn: int,
        target_asn: int,
        corpus: TraceCorpus,
        platforms: list[MeasurementPlatform] | None = None,
    ) -> int:
        """Try to capture the ``near_asn``-``target_asn`` peering in new
        traceroutes (both directions when vantage points allow).

        Returns the number of traces issued.  Traces are appended to
        ``corpus`` so the next CFS iteration sees them.
        """
        if platforms is None:
            platforms = [self.platforms.atlas, self.platforms.looking_glasses]
        budget = self.config.followup_traces
        issued = 0
        near_vps = self._vps_in(near_asn, platforms)
        target_vps = self._vps_in(target_asn, platforms)

        target_addresses = self.hitlist.targets_for(target_asn)
        near_addresses = self.hitlist.targets_for(near_asn)

        # Outbound: from inside the near AS toward the follow-up target,
        # crossing the near AS's egress toward that peer.
        if near_vps and target_addresses:
            for vp in self._sample(near_vps, budget):
                dst = self._rng.choice(target_addresses)
                trace = self._resilient_trace(
                    self._platform_of(vp, platforms), vp, dst
                )
                if trace is not None:
                    corpus.add(trace)
                    issued += 1
        # Inbound: from inside the target AS toward the near AS,
        # approaching the shared interconnection from the far side.
        if target_vps and near_addresses:
            for vp in self._sample(target_vps, budget):
                dst = self._rng.choice(near_addresses)
                trace = self._resilient_trace(
                    self._platform_of(vp, platforms), vp, dst
                )
                if trace is not None:
                    corpus.add(trace)
                    issued += 1
        # Fallback: random vantage points toward the target AS; some of
        # these paths transit the near AS and cross the peering.
        if not issued and target_addresses:
            for platform in platforms:
                dst = self._rng.choice(target_addresses)
                for trace in self._trace_from_sample(platform, dst, budget):
                    corpus.add(trace)
                    issued += 1
        self._obs.count("campaign.followup_probes")
        self._obs.count("campaign.followup_traces", issued)
        return issued

    def _sample(self, vps: list[VantagePoint], k: int) -> list[VantagePoint]:
        return self._rng.sample(vps, min(k, len(vps)))

    @staticmethod
    def _platform_of(
        vp: VantagePoint, platforms: list[MeasurementPlatform]
    ) -> MeasurementPlatform:
        for platform in platforms:
            if platform.name == vp.platform:
                return platform
        raise LookupError(f"no platform named {vp.platform}")


def _run_campaign_shard(
    context: tuple[CampaignDriver, list[ProbeTask]],
    indices: tuple[int, ...],
) -> dict:
    """Execute one campaign shard (:func:`repro.exec.parallel_map` worker).

    ``context`` is ``(driver, plan)``, fork-inherited; the payload is
    just the shard's plan positions.  The worker captures accounting
    baselines, runs its tasks against a private
    :class:`Instrumentation`, derives the deltas, and then **restores
    every baseline** before returning.  Restoring matters for the
    in-process serial fallback, where this function mutates the
    parent's real state: without the rewind, the parent's delta merge
    would double-count.  In a forked child the restore is moot (the
    child exits), so both paths behave identically by construction.

    Captured traces leave the worker flattened into
    :class:`repro.columnar.TraceArrays` — ``"indices"`` holds the plan
    slot of each (unresponsive probes yield no trace and no slot), and
    the parent rebuilds field-identical dataclasses from the arrays.
    """
    driver, plan = context
    engine = driver.platforms.atlas.engine
    lgs = driver.platforms.looking_glasses
    engine_base = engine.issue_baseline()
    lg_base = lgs.query_state()
    budget_base = driver.budget.counts()
    parent_obs = driver._obs
    driver._obs = Instrumentation()
    try:
        trace_indices: list[int] = []
        traces = TraceArrays()
        for index in indices:
            trace = driver._execute_task(plan[index])
            if trace is not None:
                trace_indices.append(index)
                traces.extend((trace,))
        issued, issue_deltas = engine.issue_deltas_since(engine_base)
        result = {
            "indices": tuple(trace_indices),
            "traces": traces,
            "engine": (issued, issue_deltas),
            "lg_queries": lgs.query_deltas_since(lg_base),
            "budget": driver.budget.deltas_since(budget_base),
            "metrics": driver._obs.snapshot(),
        }
    finally:
        driver._obs = parent_obs
    engine.restore_issue_state(engine_base)
    lgs.restore_query_state(lg_base)
    driver.budget.restore(budget_base)
    return result
