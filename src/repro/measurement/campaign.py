"""Campaign driving: hitlists, trace corpora, and targeted probing.

The measurement workflow of Sections 3.2 and 4.1:

1. build a hitlist of responsive addresses per target network (the paper
   uses BGP announcements, ZMap's hitlist, and content-provider white
   lists);
2. run an initial campaign toward the study targets from Atlas and the
   looking glasses, and fold in archived iPlane/Ark sweeps;
3. during CFS iterations, issue *targeted* follow-up traceroutes chosen
   to cross specific peerings (Step 4).

A :class:`TraceCorpus` accumulates every measurement; CFS re-reads it on
each iteration, so archived and fresh traces constrain inferences alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from ..faults.errors import MeasurementFault
from ..obs import Instrumentation
from ..topology.network import InterfaceKind
from ..topology.topology import Topology
from .platforms import MeasurementPlatform, PlatformSet, VantagePoint
from .resilience import CircuitBreaker, ProbeBudget, ResilienceConfig
from .traceroute import Traceroute

__all__ = ["Hitlist", "TraceCorpus", "CampaignDriver", "CampaignConfig"]


class Hitlist:
    """Responsive target addresses per AS.

    The public-knowledge analogue of the ZMap hitlist plus per-provider
    white lists: for each AS, a set of addresses known to respond.  We
    use host/server addresses behind the AS's routers — like the content
    servers and hitlist hosts the paper targeted, probes toward them
    keep every router crossing (including the last one) observable.
    """

    def __init__(
        self,
        topology: Topology,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self._obs = instrumentation or Instrumentation()
        self._targets: dict[int, list[int]] = {}
        for asn in topology.ases:
            addresses: list[int] = []
            for router_id in topology.routers_of(asn):
                for address in topology.routers[router_id].interfaces:
                    interface = topology.interfaces[address]
                    if interface.kind is InterfaceKind.HOST:
                        addresses.append(address)
            self._targets[asn] = sorted(addresses)

    def targets_for(self, asn: int) -> list[int]:
        """Responsive addresses inside ``asn`` (may be empty).

        An ASN the hitlist has never heard of is worth surfacing — a
        campaign aimed at it will silently probe nothing — so the miss
        is counted and emitted as ``hitlist.miss``.
        """
        targets = self._targets.get(asn)
        if targets is None:
            self._obs.count("hitlist.miss")
            self._obs.emit("hitlist.miss", asn=asn)
            return []
        return targets

    def all_targets(self) -> list[int]:
        """Every known-responsive address."""
        return [addr for addrs in self._targets.values() for addr in addrs]


@dataclass(slots=True)
class TraceCorpus:
    """Accumulated traceroute measurements."""

    traces: list[Traceroute] = field(default_factory=list)

    def add(self, trace: Traceroute) -> None:
        """Append one traceroute."""
        self.traces.append(trace)

    def extend(self, traces: list[Traceroute]) -> None:
        """Append many traceroutes."""
        self.traces.extend(traces)

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self):
        return iter(self.traces)

    def by_platform(self, platform: str) -> list[Traceroute]:
        """Subset collected by one platform."""
        return [t for t in self.traces if t.platform == platform]

    def observed_addresses(self) -> set[int]:
        """Every responsive hop address seen so far."""
        addresses: set[int] = set()
        for trace in self.traces:
            addresses.update(trace.responsive_addresses())
        return addresses


@dataclass(frozen=True, slots=True)
class CampaignConfig:
    """Probing budgets for the initial and follow-up campaigns."""

    #: Atlas probes sampled per target address in the initial campaign.
    atlas_sample_per_target: int = 25
    #: Looking-glass vantage points sampled per target address.
    lg_sample_per_target: int = 8
    #: Targets each archive node sweeps per archived dataset.
    archive_targets_per_node: int = 15
    #: Traces issued per direction in one follow-up probe.
    followup_traces: int = 4
    #: Retry/backoff, circuit-breaker, and probe-budget policy.
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)


class CampaignDriver:
    """Issues campaigns over a :class:`PlatformSet` into a corpus."""

    def __init__(
        self,
        platforms: PlatformSet,
        hitlist: Hitlist,
        config: CampaignConfig | None = None,
        seed: int = 0,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.platforms = platforms
        self.hitlist = hitlist
        self.config = config or CampaignConfig()
        self._rng = Random(seed)
        self._obs = instrumentation or Instrumentation()
        resilience = self.config.resilience
        self._retry_policy = resilience.retry
        self._breakers: dict[str, CircuitBreaker] = {}
        self.budget = ProbeBudget(max_probes=resilience.max_probes)
        #: Simulated wall-clock cost of retry backoff (like the looking
        #: glasses' ``simulated_wait_s`` — accounted, never slept).
        self.simulated_backoff_s = 0.0
        #: Jitter stream; untouched unless a probe actually fails, so
        #: fault-free runs draw nothing from it.
        self._retry_rng = Random(f"campaign-retry:{seed}")

    def _breaker(self, platform_name: str) -> CircuitBreaker:
        """The per-platform circuit breaker (lazily created)."""
        breaker = self._breakers.get(platform_name)
        if breaker is None:
            resilience = self.config.resilience
            breaker = CircuitBreaker(
                failure_threshold=resilience.breaker_failure_threshold,
                cooldown_s=resilience.breaker_cooldown_s,
            )
            self._breakers[platform_name] = breaker
        return breaker

    def quarantined_vantage_points(self) -> set[str]:
        """Vantage points ever quarantined by a circuit breaker."""
        return {
            vp_id
            for breaker in self._breakers.values()
            for vp_id in breaker.tripped
        }

    def _backoff(self, attempt: int) -> None:
        """Account the post-failure backoff and age the breakers."""
        pause = self._retry_policy.backoff_s(attempt, self._retry_rng)
        self.simulated_backoff_s += pause
        for breaker in self._breakers.values():
            breaker.advance(pause)

    def _resilient_trace(
        self,
        platform: MeasurementPlatform,
        vp: VantagePoint,
        dst_address: int,
    ) -> Traceroute | None:
        """One probe with retry/backoff, breaker, and budget applied.

        Returns ``None`` when the probe was skipped (quarantined vantage
        point, exhausted budget) or abandoned after its last retry; the
        campaign carries on with one trace fewer either way.
        """
        breaker = self._breaker(platform.name)
        if breaker.is_open(vp.vp_id):
            self.budget.skipped_quarantined += 1
            self._obs.count("campaign.quarantined_skips")
            return None
        for attempt in range(self._retry_policy.max_attempts):
            if not self.budget.allow():
                self.budget.skipped_budget += 1
                self._obs.count("campaign.budget_exhausted")
                return None
            self.budget.attempts += 1
            try:
                trace = platform.trace(vp, dst_address)
            except MeasurementFault as fault:
                self._obs.count("campaign.probe_faults")
                self._obs.count(f"campaign.fault.{fault.kind}")
                if breaker.record_failure(vp.vp_id):
                    self._obs.count("campaign.vp_quarantined")
                    self._obs.emit(
                        "campaign.vp_quarantined",
                        vp=vp.vp_id,
                        platform=platform.name,
                        fault=fault.kind,
                    )
                if breaker.is_open(vp.vp_id):
                    break  # quarantined mid-probe: stop retrying it
                if attempt + 1 < self._retry_policy.max_attempts:
                    self._backoff(attempt)
                    self.budget.retried += 1
                    self._obs.count("campaign.retries")
                continue
            breaker.record_success(vp.vp_id)
            self._obs.count("campaign.probes_issued")
            return trace
        self.budget.failed += 1
        self._obs.count("campaign.probe_gave_up")
        return None

    def _trace_from_sample(
        self,
        platform: MeasurementPlatform,
        dst_address: int,
        sample_size: int,
    ) -> list[Traceroute]:
        """Resilient analogue of ``platform.trace_from_sample``.

        Draws the identical vantage-point sample from ``self._rng`` (so
        fault-free runs are byte-identical to the direct call), then
        routes each probe through :meth:`_resilient_trace`.
        """
        size = min(sample_size, len(platform.vantage_points))
        sample = self._rng.sample(platform.vantage_points, size) if size else []
        traces: list[Traceroute] = []
        for vp in sample:
            trace = self._resilient_trace(platform, vp, dst_address)
            if trace is not None:
                traces.append(trace)
        return traces

    def initial_campaign(
        self, target_asns: list[int], include_archives: bool = True
    ) -> TraceCorpus:
        """The Section-5 style campaign toward the study targets, with
        archived iPlane/Ark sweeps folded in (Section 4.1).

        ``include_archives=False`` skips the archived sweeps — useful
        when campaigns toward individual targets are accumulated
        incrementally and the archives should be counted once.
        """
        corpus = TraceCorpus()
        for asn in target_asns:
            targets = self.hitlist.targets_for(asn)
            if not targets:
                self._obs.count("campaign.empty_hitlist")
            for dst in targets:
                corpus.extend(
                    self._trace_from_sample(
                        self.platforms.atlas,
                        dst,
                        self.config.atlas_sample_per_target,
                    )
                )
                corpus.extend(
                    self._trace_from_sample(
                        self.platforms.looking_glasses,
                        dst,
                        self.config.lg_sample_per_target,
                    )
                )
        sweep_targets = self.hitlist.all_targets()
        if sweep_targets and include_archives:
            corpus.extend(
                self.platforms.iplane.collect_sweep(
                    sweep_targets,
                    self.config.archive_targets_per_node,
                    seed=self._rng.randrange(2**30),
                )
            )
            corpus.extend(
                self.platforms.ark.collect_sweep(
                    sweep_targets,
                    self.config.archive_targets_per_node,
                    seed=self._rng.randrange(2**30),
                )
            )
        self._obs.count("campaign.initial_traces", len(corpus))
        self._obs.emit(
            "campaign.initial",
            targets=len(target_asns),
            traces=len(corpus),
            archives=include_archives,
        )
        return corpus

    # ------------------------------------------------------------------
    # Follow-up probing (CFS Step 4)
    # ------------------------------------------------------------------

    def _vps_in(self, asn: int, platforms: list[MeasurementPlatform]) -> list[VantagePoint]:
        vps: list[VantagePoint] = []
        for platform in platforms:
            vps.extend(platform.vantage_points_in(asn))
        return vps

    def probe_peering(
        self,
        near_asn: int,
        target_asn: int,
        corpus: TraceCorpus,
        platforms: list[MeasurementPlatform] | None = None,
    ) -> int:
        """Try to capture the ``near_asn``-``target_asn`` peering in new
        traceroutes (both directions when vantage points allow).

        Returns the number of traces issued.  Traces are appended to
        ``corpus`` so the next CFS iteration sees them.
        """
        if platforms is None:
            platforms = [self.platforms.atlas, self.platforms.looking_glasses]
        budget = self.config.followup_traces
        issued = 0
        near_vps = self._vps_in(near_asn, platforms)
        target_vps = self._vps_in(target_asn, platforms)

        target_addresses = self.hitlist.targets_for(target_asn)
        near_addresses = self.hitlist.targets_for(near_asn)

        # Outbound: from inside the near AS toward the follow-up target,
        # crossing the near AS's egress toward that peer.
        if near_vps and target_addresses:
            for vp in self._sample(near_vps, budget):
                dst = self._rng.choice(target_addresses)
                trace = self._resilient_trace(
                    self._platform_of(vp, platforms), vp, dst
                )
                if trace is not None:
                    corpus.add(trace)
                    issued += 1
        # Inbound: from inside the target AS toward the near AS,
        # approaching the shared interconnection from the far side.
        if target_vps and near_addresses:
            for vp in self._sample(target_vps, budget):
                dst = self._rng.choice(near_addresses)
                trace = self._resilient_trace(
                    self._platform_of(vp, platforms), vp, dst
                )
                if trace is not None:
                    corpus.add(trace)
                    issued += 1
        # Fallback: random vantage points toward the target AS; some of
        # these paths transit the near AS and cross the peering.
        if not issued and target_addresses:
            for platform in platforms:
                dst = self._rng.choice(target_addresses)
                for trace in self._trace_from_sample(platform, dst, budget):
                    corpus.add(trace)
                    issued += 1
        self._obs.count("campaign.followup_probes")
        self._obs.count("campaign.followup_traces", issued)
        return issued

    def _sample(self, vps: list[VantagePoint], k: int) -> list[VantagePoint]:
        return self._rng.sample(vps, min(k, len(vps)))

    @staticmethod
    def _platform_of(
        vp: VantagePoint, platforms: list[MeasurementPlatform]
    ) -> MeasurementPlatform:
        for platform in platforms:
            if platform.name == vp.platform:
                return platform
        raise LookupError(f"no platform named {vp.platform}")
