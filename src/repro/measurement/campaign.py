"""Campaign driving: hitlists, trace corpora, and targeted probing.

The measurement workflow of Sections 3.2 and 4.1:

1. build a hitlist of responsive addresses per target network (the paper
   uses BGP announcements, ZMap's hitlist, and content-provider white
   lists);
2. run an initial campaign toward the study targets from Atlas and the
   looking glasses, and fold in archived iPlane/Ark sweeps;
3. during CFS iterations, issue *targeted* follow-up traceroutes chosen
   to cross specific peerings (Step 4).

A :class:`TraceCorpus` accumulates every measurement; CFS re-reads it on
each iteration, so archived and fresh traces constrain inferences alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from ..obs import Instrumentation
from ..topology.network import InterfaceKind
from ..topology.topology import Topology
from .platforms import MeasurementPlatform, PlatformSet, VantagePoint
from .traceroute import Traceroute

__all__ = ["Hitlist", "TraceCorpus", "CampaignDriver", "CampaignConfig"]


class Hitlist:
    """Responsive target addresses per AS.

    The public-knowledge analogue of the ZMap hitlist plus per-provider
    white lists: for each AS, a set of addresses known to respond.  We
    use host/server addresses behind the AS's routers — like the content
    servers and hitlist hosts the paper targeted, probes toward them
    keep every router crossing (including the last one) observable.
    """

    def __init__(self, topology: Topology) -> None:
        self._targets: dict[int, list[int]] = {}
        for asn in topology.ases:
            addresses: list[int] = []
            for router_id in topology.routers_of(asn):
                for address in topology.routers[router_id].interfaces:
                    interface = topology.interfaces[address]
                    if interface.kind is InterfaceKind.HOST:
                        addresses.append(address)
            self._targets[asn] = sorted(addresses)

    def targets_for(self, asn: int) -> list[int]:
        """Responsive addresses inside ``asn`` (may be empty)."""
        return self._targets.get(asn, [])

    def all_targets(self) -> list[int]:
        """Every known-responsive address."""
        return [addr for addrs in self._targets.values() for addr in addrs]


@dataclass(slots=True)
class TraceCorpus:
    """Accumulated traceroute measurements."""

    traces: list[Traceroute] = field(default_factory=list)

    def add(self, trace: Traceroute) -> None:
        """Append one traceroute."""
        self.traces.append(trace)

    def extend(self, traces: list[Traceroute]) -> None:
        """Append many traceroutes."""
        self.traces.extend(traces)

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self):
        return iter(self.traces)

    def by_platform(self, platform: str) -> list[Traceroute]:
        """Subset collected by one platform."""
        return [t for t in self.traces if t.platform == platform]

    def observed_addresses(self) -> set[int]:
        """Every responsive hop address seen so far."""
        addresses: set[int] = set()
        for trace in self.traces:
            addresses.update(trace.responsive_addresses())
        return addresses


@dataclass(frozen=True, slots=True)
class CampaignConfig:
    """Probing budgets for the initial and follow-up campaigns."""

    #: Atlas probes sampled per target address in the initial campaign.
    atlas_sample_per_target: int = 25
    #: Looking-glass vantage points sampled per target address.
    lg_sample_per_target: int = 8
    #: Targets each archive node sweeps per archived dataset.
    archive_targets_per_node: int = 15
    #: Traces issued per direction in one follow-up probe.
    followup_traces: int = 4


class CampaignDriver:
    """Issues campaigns over a :class:`PlatformSet` into a corpus."""

    def __init__(
        self,
        platforms: PlatformSet,
        hitlist: Hitlist,
        config: CampaignConfig | None = None,
        seed: int = 0,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.platforms = platforms
        self.hitlist = hitlist
        self.config = config or CampaignConfig()
        self._rng = Random(seed)
        self._obs = instrumentation or Instrumentation()

    def initial_campaign(
        self, target_asns: list[int], include_archives: bool = True
    ) -> TraceCorpus:
        """The Section-5 style campaign toward the study targets, with
        archived iPlane/Ark sweeps folded in (Section 4.1).

        ``include_archives=False`` skips the archived sweeps — useful
        when campaigns toward individual targets are accumulated
        incrementally and the archives should be counted once.
        """
        corpus = TraceCorpus()
        for asn in target_asns:
            for dst in self.hitlist.targets_for(asn):
                corpus.extend(
                    self.platforms.atlas.trace_from_sample(
                        dst, self.config.atlas_sample_per_target, self._rng
                    )
                )
                corpus.extend(
                    self.platforms.looking_glasses.trace_from_sample(
                        dst, self.config.lg_sample_per_target, self._rng
                    )
                )
        sweep_targets = self.hitlist.all_targets()
        if sweep_targets and include_archives:
            corpus.extend(
                self.platforms.iplane.collect_sweep(
                    sweep_targets,
                    self.config.archive_targets_per_node,
                    seed=self._rng.randrange(2**30),
                )
            )
            corpus.extend(
                self.platforms.ark.collect_sweep(
                    sweep_targets,
                    self.config.archive_targets_per_node,
                    seed=self._rng.randrange(2**30),
                )
            )
        self._obs.count("campaign.initial_traces", len(corpus))
        self._obs.emit(
            "campaign.initial",
            targets=len(target_asns),
            traces=len(corpus),
            archives=include_archives,
        )
        return corpus

    # ------------------------------------------------------------------
    # Follow-up probing (CFS Step 4)
    # ------------------------------------------------------------------

    def _vps_in(self, asn: int, platforms: list[MeasurementPlatform]) -> list[VantagePoint]:
        vps: list[VantagePoint] = []
        for platform in platforms:
            vps.extend(platform.vantage_points_in(asn))
        return vps

    def probe_peering(
        self,
        near_asn: int,
        target_asn: int,
        corpus: TraceCorpus,
        platforms: list[MeasurementPlatform] | None = None,
    ) -> int:
        """Try to capture the ``near_asn``-``target_asn`` peering in new
        traceroutes (both directions when vantage points allow).

        Returns the number of traces issued.  Traces are appended to
        ``corpus`` so the next CFS iteration sees them.
        """
        if platforms is None:
            platforms = [self.platforms.atlas, self.platforms.looking_glasses]
        budget = self.config.followup_traces
        issued = 0
        near_vps = self._vps_in(near_asn, platforms)
        target_vps = self._vps_in(target_asn, platforms)

        target_addresses = self.hitlist.targets_for(target_asn)
        near_addresses = self.hitlist.targets_for(near_asn)

        # Outbound: from inside the near AS toward the follow-up target,
        # crossing the near AS's egress toward that peer.
        if near_vps and target_addresses:
            for vp in self._sample(near_vps, budget):
                dst = self._rng.choice(target_addresses)
                corpus.add(self._platform_of(vp, platforms).trace(vp, dst))
                issued += 1
        # Inbound: from inside the target AS toward the near AS,
        # approaching the shared interconnection from the far side.
        if target_vps and near_addresses:
            for vp in self._sample(target_vps, budget):
                dst = self._rng.choice(near_addresses)
                corpus.add(self._platform_of(vp, platforms).trace(vp, dst))
                issued += 1
        # Fallback: random vantage points toward the target AS; some of
        # these paths transit the near AS and cross the peering.
        if not issued and target_addresses:
            for platform in platforms:
                for trace in platform.trace_from_sample(
                    self._rng.choice(target_addresses), budget, self._rng
                ):
                    corpus.add(trace)
                    issued += 1
        self._obs.count("campaign.followup_probes")
        self._obs.count("campaign.followup_traces", issued)
        return issued

    def _sample(self, vps: list[VantagePoint], k: int) -> list[VantagePoint]:
        return self._rng.sample(vps, min(k, len(vps)))

    @staticmethod
    def _platform_of(
        vp: VantagePoint, platforms: list[MeasurementPlatform]
    ) -> MeasurementPlatform:
        for platform in platforms:
            if platform.name == vp.platform:
                return platform
        raise LookupError(f"no platform named {vp.platform}")
