"""Inference workloads layered on top of published map snapshots.

The serve layer produces immutable :class:`~repro.serve.snapshot.
MapSnapshot` versions; this package consumes them (duck-typed — it
sits *below* serve in the layering DAG, so it never imports it) to
answer higher-order questions.  First resident: facility-disruption
detection (:mod:`.disruption`), the "Detecting Network Disruptions At
Colocation Facilities" workload — diff successive snapshots, aggregate
per-facility loss, and localise outages with hysteresis so one noisy
epoch never alarms.
"""

from __future__ import annotations

from .disruption import (
    DisruptionDetector,
    DisruptionPolicy,
    DisruptionReport,
    SnapshotDiff,
    diff_maps,
    facility_endpoint_counts,
)

__all__ = [
    "DisruptionDetector",
    "DisruptionPolicy",
    "DisruptionReport",
    "SnapshotDiff",
    "diff_maps",
    "facility_endpoint_counts",
]
