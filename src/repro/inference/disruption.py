"""Facility-disruption detection by diffing successive map snapshots.

Two pieces:

* :func:`diff_maps` — a structured, composable diff between two
  published snapshots: link endpoints gained/lost per facility and
  tenant moves.  Diffs over the same underlying walk compose
  (``diff(a, b).compose(diff(b, c)) == diff(a, c)``), so a consumer
  that missed an epoch (quarantine) can still reason about the span.
* :class:`DisruptionDetector` — feeds per-epoch diffs/snapshots into
  per-facility loss scores with hysteresis and debounce, and emits
  localised :class:`DisruptionReport`\\ s.

The detector's core discrimination trick is *global-loss subtraction*:
measurement faults (probe loss, truncation, VP outages) depress the
inferred map roughly uniformly, while a real facility event craters
one facility.  Scoring ``local loss − global loss`` therefore stays
quiet under pure fault pressure and still fires on localised loss; the
``data_health`` input raises the bar further when the snapshot itself
reports degraded inputs.  See DESIGN.md §5l.

This package sits below serve in the layering DAG, so everything here
is duck-typed over the snapshot surface (``links``, ``facility_tenants``,
``fingerprint``, ``epoch``) rather than importing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as _replace
from types import MappingProxyType
from typing import Any, Mapping

__all__ = [
    "DisruptionDetector",
    "DisruptionPolicy",
    "DisruptionReport",
    "EMPTY_DIFF",
    "SnapshotDiff",
    "diff_maps",
    "facility_endpoint_counts",
]

#: One link endpoint as the diff tracks it: ("near"|"far", link key).
Endpoint = tuple[str, tuple[Any, ...]]

#: Shared empty mapping — the identical-snapshot fast path hands out
#: this one object for all four diff sides, allocating nothing per call.
EMPTY_DIFF: Mapping[Any, Any] = MappingProxyType({})


def _link_key(entry: Any) -> tuple[Any, ...]:
    """Identity of a link across snapshots (placement excluded — a link
    re-pinned to another facility shows up as lost+gained, which is
    exactly the signal a facility diff wants)."""
    return (
        entry.kind,
        entry.near_address,
        entry.near_asn,
        entry.far_asn,
        entry.ixp_id,
        entry.far_address,
    )


def _facility_endpoints(
    snapshot: Any,
) -> dict[int | None, frozenset[Endpoint]]:
    """facility -> set of link endpoints pinned there (None = unpinned)."""
    buckets: dict[int | None, set[Endpoint]] = {}
    for entry in snapshot.links:
        key = _link_key(entry)
        buckets.setdefault(entry.near_facility, set()).add(("near", key))
        buckets.setdefault(entry.far_facility, set()).add(("far", key))
    return {facility: frozenset(endpoints) for facility, endpoints in buckets.items()}


def facility_endpoint_counts(snapshot: Any) -> dict[int, int]:
    """Pinned link-endpoint count per facility (unpinned excluded)."""
    counts: dict[int, int] = {}
    for entry in snapshot.links:
        for facility in (entry.near_facility, entry.far_facility):
            if facility is not None:
                counts[facility] = counts.get(facility, 0) + 1
    return counts


def _facility_tenants(snapshot: Any) -> dict[int, frozenset[int]]:
    return {
        facility: frozenset(asns)
        for facility, asns in snapshot.facility_tenants.items()
    }


def _nonempty(
    sides: dict[Any, frozenset[Any]],
) -> Mapping[Any, frozenset[Any]]:
    kept = {key: value for key, value in sides.items() if value}
    return MappingProxyType(kept) if kept else EMPTY_DIFF


@dataclass(frozen=True, slots=True)
class SnapshotDiff:
    """Structured change between two snapshots of the same map walk.

    All four mappings are keyed by facility (``None`` holds unpinned
    link endpoints; tenant maps never use it) and hold frozensets, so
    composition is plain set algebra.  Identical-fingerprint inputs
    share :data:`EMPTY_DIFF` on every side.
    """

    from_epoch: int
    to_epoch: int
    from_fingerprint: str
    to_fingerprint: str
    links_lost: Mapping[int | None, frozenset[Endpoint]]
    links_gained: Mapping[int | None, frozenset[Endpoint]]
    tenants_lost: Mapping[int, frozenset[int]]
    tenants_gained: Mapping[int, frozenset[int]]

    @property
    def is_empty(self) -> bool:
        return not (
            self.links_lost
            or self.links_gained
            or self.tenants_lost
            or self.tenants_gained
        )

    def lost_counts(self) -> dict[int | None, int]:
        """Endpoints lost per facility, plain-dict rendering."""
        return {
            facility: len(self.links_lost[facility])
            for facility in sorted(self.links_lost, key=lambda f: (f is None, f))
        }

    def gained_counts(self) -> dict[int | None, int]:
        return {
            facility: len(self.links_gained[facility])
            for facility in sorted(self.links_gained, key=lambda f: (f is None, f))
        }

    def compose(self, other: "SnapshotDiff") -> "SnapshotDiff":
        """Associative composition: ``diff(a,b).compose(diff(b,c))``
        equals ``diff(a,c)``.

        Per facility: an item lost a→b stays lost unless b→c regained
        it; an item lost b→c counts only if a→b had not just gained it
        (then it was never in *a*) — and symmetrically for gains.
        Raises ``ValueError`` when the diffs do not chain.
        """
        if self.to_fingerprint != other.from_fingerprint:
            raise ValueError(
                "cannot compose diffs: right side does not start where "
                "the left side ends"
            )

        def merge(
            lost_ab: Mapping[Any, frozenset[Any]],
            gained_ab: Mapping[Any, frozenset[Any]],
            lost_bc: Mapping[Any, frozenset[Any]],
            gained_bc: Mapping[Any, frozenset[Any]],
        ) -> tuple[Mapping[Any, frozenset[Any]], Mapping[Any, frozenset[Any]]]:
            empty: frozenset[Any] = frozenset()
            keys = set(lost_ab) | set(gained_ab) | set(lost_bc) | set(gained_bc)
            lost: dict[Any, frozenset[Any]] = {}
            gained: dict[Any, frozenset[Any]] = {}
            for key in sorted(keys, key=lambda k: (k is None, k)):
                l_ab = lost_ab.get(key, empty)
                g_ab = gained_ab.get(key, empty)
                l_bc = lost_bc.get(key, empty)
                g_bc = gained_bc.get(key, empty)
                lost[key] = (l_ab - g_bc) | (l_bc - g_ab)
                gained[key] = (g_ab - l_bc) | (g_bc - l_ab)
            return _nonempty(lost), _nonempty(gained)

        links_lost, links_gained = merge(
            self.links_lost, self.links_gained, other.links_lost, other.links_gained
        )
        tenants_lost, tenants_gained = merge(
            self.tenants_lost,
            self.tenants_gained,
            other.tenants_lost,
            other.tenants_gained,
        )
        return SnapshotDiff(
            from_epoch=self.from_epoch,
            to_epoch=other.to_epoch,
            from_fingerprint=self.from_fingerprint,
            to_fingerprint=other.to_fingerprint,
            links_lost=links_lost,
            links_gained=links_gained,
            tenants_lost=tenants_lost,
            tenants_gained=tenants_gained,
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "from_epoch": self.from_epoch,
            "to_epoch": self.to_epoch,
            "from_fingerprint": self.from_fingerprint,
            "to_fingerprint": self.to_fingerprint,
            "links_lost": {str(k): v for k, v in self.lost_counts().items()},
            "links_gained": {str(k): v for k, v in self.gained_counts().items()},
            "tenants_lost": {
                str(facility): len(self.tenants_lost[facility])
                for facility in sorted(self.tenants_lost)
            },
            "tenants_gained": {
                str(facility): len(self.tenants_gained[facility])
                for facility in sorted(self.tenants_gained)
            },
        }


def diff_maps(before: Any, after: Any) -> SnapshotDiff:
    """Structured diff between two snapshots (duck-typed).

    Fast path: equal content fingerprints mean equal maps by
    construction (the fingerprint covers the canonical map content),
    so the result reuses :data:`EMPTY_DIFF` without touching the link
    tables at all.
    """
    if before.fingerprint == after.fingerprint:
        return SnapshotDiff(
            from_epoch=before.epoch,
            to_epoch=after.epoch,
            from_fingerprint=before.fingerprint,
            to_fingerprint=after.fingerprint,
            links_lost=EMPTY_DIFF,
            links_gained=EMPTY_DIFF,
            tenants_lost=EMPTY_DIFF,
            tenants_gained=EMPTY_DIFF,
        )
    links_a = _facility_endpoints(before)
    links_b = _facility_endpoints(after)
    tenants_a = _facility_tenants(before)
    tenants_b = _facility_tenants(after)

    def sides(
        map_a: dict[Any, frozenset[Any]], map_b: dict[Any, frozenset[Any]]
    ) -> tuple[Mapping[Any, frozenset[Any]], Mapping[Any, frozenset[Any]]]:
        empty: frozenset[Any] = frozenset()
        keys = set(map_a) | set(map_b)
        lost: dict[Any, frozenset[Any]] = {}
        gained: dict[Any, frozenset[Any]] = {}
        for key in sorted(keys, key=lambda k: (k is None, k)):
            in_a = map_a.get(key, empty)
            in_b = map_b.get(key, empty)
            lost[key] = in_a - in_b
            gained[key] = in_b - in_a
        return _nonempty(lost), _nonempty(gained)

    links_lost, links_gained = sides(links_a, links_b)
    tenants_lost, tenants_gained = sides(tenants_a, tenants_b)
    return SnapshotDiff(
        from_epoch=before.epoch,
        to_epoch=after.epoch,
        from_fingerprint=before.fingerprint,
        to_fingerprint=after.fingerprint,
        links_lost=links_lost,
        links_gained=links_gained,
        tenants_lost=tenants_lost,
        tenants_gained=tenants_gained,
    )


@dataclass(frozen=True, slots=True)
class DisruptionPolicy:
    """Thresholds and hysteresis for the facility-loss detector.

    ``loss_threshold`` is on the *excess* local loss ratio (local loss
    minus global loss — see module docstring); ``fault_margin`` scales
    with the snapshot's reported input degradation, raising the bar
    exactly when measurements are least trustworthy.  ``confirm_epochs``
    consecutive suspect epochs are required before an alarm (debounce),
    ``clear_epochs`` consecutive recovered epochs before it clears
    (hysteresis) — one noisy epoch moves nothing in either direction.
    """

    loss_threshold: float = 0.5
    clear_threshold: float = 0.25
    confirm_epochs: int = 2
    clear_epochs: int = 2
    min_links: int = 3
    fault_margin: float = 0.3
    baseline_gain: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 < self.loss_threshold <= 1.0:
            raise ValueError("loss_threshold must be in (0, 1]")
        if not 0.0 <= self.clear_threshold < self.loss_threshold:
            raise ValueError("clear_threshold must be in [0, loss_threshold)")
        if self.confirm_epochs < 1 or self.clear_epochs < 1:
            raise ValueError("confirm_epochs and clear_epochs must be >= 1")
        if self.min_links < 1:
            raise ValueError("min_links must be >= 1")
        if self.fault_margin < 0:
            raise ValueError("fault_margin must be >= 0")
        if not 0.0 < self.baseline_gain <= 1.0:
            raise ValueError("baseline_gain must be in (0, 1]")

    def replace(self, **overrides: Any) -> "DisruptionPolicy":
        return _replace(self, **overrides)

    def as_dict(self) -> dict[str, Any]:
        return {
            "loss_threshold": self.loss_threshold,
            "clear_threshold": self.clear_threshold,
            "confirm_epochs": self.confirm_epochs,
            "clear_epochs": self.clear_epochs,
            "min_links": self.min_links,
            "fault_margin": self.fault_margin,
            "baseline_gain": self.baseline_gain,
        }


@dataclass(frozen=True, slots=True)
class DisruptionReport:
    """One localised detector verdict (``alarm`` or ``clear``)."""

    kind: str
    facility_id: int
    epoch: int
    score: float
    baseline: float
    observed: int
    global_loss: float
    fingerprint: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "facility_id": self.facility_id,
            "epoch": self.epoch,
            "score": round(self.score, 6),
            "baseline": round(self.baseline, 3),
            "observed": self.observed,
            "global_loss": round(self.global_loss, 6),
            "fingerprint": self.fingerprint,
        }


#: Health assessments the detector can hand the serving layer.
ASSESSMENTS = ("stable", "topology-change", "measurement-fault", "mixed")


@dataclass(slots=True)
class DisruptionDetector:
    """Stateful per-facility loss scorer over a snapshot stream.

    Feed it every published snapshot in order via :meth:`observe`
    (skipped/quarantined epochs are fine — streaks advance on observed
    epochs only).  The first observation seeds the baselines and never
    alarms.  Returns the reports newly emitted for that epoch; the
    full log accumulates on :attr:`reports`.
    """

    policy: DisruptionPolicy = field(default_factory=DisruptionPolicy)
    instrumentation: Any = None
    reports: list[DisruptionReport] = field(default_factory=list)
    _baselines: dict[int, float] = field(default_factory=dict)
    _bad_streak: dict[int, int] = field(default_factory=dict)
    _good_streak: dict[int, int] = field(default_factory=dict)
    _alarmed: set[int] = field(default_factory=set)
    _assessment: str = "stable"
    _observations: int = 0
    _last_global_loss: float = 0.0
    _last_fault_pressure: float = 0.0
    _last_fingerprint: str | None = None
    _last_counts: dict[int, int] = field(default_factory=dict)

    @property
    def assessment(self) -> str:
        """Latest change-vs-fault verdict (one of :data:`ASSESSMENTS`)."""
        return self._assessment

    @property
    def observations(self) -> int:
        return self._observations

    def alarmed_facilities(self) -> tuple[int, ...]:
        return tuple(sorted(self._alarmed))

    def observe(
        self,
        snapshot: Any,
        *,
        diff: SnapshotDiff | None = None,
        data_health: Mapping[str, Any] | None = None,
    ) -> list[DisruptionReport]:
        """Score one published snapshot; returns newly emitted reports.

        ``diff`` is advisory (its fast path lets a quiet epoch skip all
        scoring); the scores themselves come from absolute per-facility
        endpoint counts against learned baselines, so a missed epoch
        cannot hide a loss.  ``data_health`` is the snapshot's own
        input-quality report — fault pressure from it widens the alarm
        margin instead of tripping it.
        """
        epoch = snapshot.epoch
        if (
            diff is not None
            and diff.is_empty
            and snapshot.fingerprint == self._last_fingerprint
        ):
            # Empty diff over the same content: counts cannot have
            # moved, so skip the link walk.  Scoring still runs — a
            # facility that went down and *stayed* down produces empty
            # diffs every epoch while its loss persists.
            counts = self._last_counts
        else:
            counts = facility_endpoint_counts(snapshot)
        self._last_fingerprint = snapshot.fingerprint
        self._last_counts = counts
        self._observations += 1
        if len(self._baselines) == 0:
            for facility in sorted(counts):
                self._baselines[facility] = float(counts[facility])
            self._assessment = "stable"
            return []

        ok_fraction = 1.0
        if data_health is not None:
            ok_fraction = float(data_health.get("ok_fraction", 1.0))
        fault_pressure = max(0.0, 1.0 - ok_fraction)
        self._last_fault_pressure = fault_pressure

        baseline_total = sum(self._baselines.values())
        observed_total = float(
            sum(counts.get(facility, 0) for facility in self._baselines)
        )
        global_loss = 0.0
        if baseline_total > 0:
            global_loss = max(0.0, 1.0 - observed_total / baseline_total)
        self._last_global_loss = global_loss

        threshold = self.policy.loss_threshold + self.policy.fault_margin * fault_pressure
        emitted: list[DisruptionReport] = []
        gain = self.policy.baseline_gain
        for facility in sorted(set(self._baselines) | set(counts)):
            baseline = self._baselines.get(facility, 0.0)
            observed = counts.get(facility, 0)
            if baseline < self.policy.min_links:
                # Too small to score; just track its size.
                self._baselines[facility] = max(float(observed), baseline)
                continue
            local_loss = max(0.0, 1.0 - observed / baseline)
            score = local_loss - global_loss
            suspect = score >= threshold
            if facility in self._alarmed:
                if local_loss <= self.policy.clear_threshold:
                    streak = self._good_streak.get(facility, 0) + 1
                    self._good_streak[facility] = streak
                    if streak >= self.policy.clear_epochs:
                        self._alarmed.discard(facility)
                        self._good_streak[facility] = 0
                        self._bad_streak[facility] = 0
                        self._baselines[facility] = float(observed)
                        emitted.append(
                            self._report(
                                "clear", facility, epoch, score, baseline,
                                observed, global_loss, snapshot.fingerprint,
                            )
                        )
                else:
                    self._good_streak[facility] = 0
                continue
            if suspect:
                streak = self._bad_streak.get(facility, 0) + 1
                self._bad_streak[facility] = streak
                if streak >= self.policy.confirm_epochs:
                    self._alarmed.add(facility)
                    self._good_streak[facility] = 0
                    emitted.append(
                        self._report(
                            "alarm", facility, epoch, score, baseline,
                            observed, global_loss, snapshot.fingerprint,
                        )
                    )
            else:
                self._bad_streak[facility] = 0
                if observed >= baseline:
                    self._baselines[facility] = float(observed)
                else:
                    self._baselines[facility] = baseline + gain * (observed - baseline)
        suspected = any(
            streak > 0 for _, streak in sorted(self._bad_streak.items())
        )
        changing = bool(self._alarmed) or suspected
        faulty = fault_pressure >= 0.05 or (global_loss >= 0.1 and not changing)
        if changing and faulty:
            self._assessment = "mixed"
        elif changing:
            self._assessment = "topology-change"
        elif faulty:
            self._assessment = "measurement-fault"
        else:
            self._assessment = "stable"
        return emitted

    def status(self) -> dict[str, Any]:
        """Discrimination fields for ``ServiceHealth``/query surfaces."""
        return {
            "assessment": self._assessment,
            "alarmed_facilities": list(self.alarmed_facilities()),
            "active_alarms": len(self._alarmed),
            "observations": self._observations,
            "global_loss": round(self._last_global_loss, 6),
            "fault_pressure": round(self._last_fault_pressure, 6),
        }

    def _report(
        self,
        kind: str,
        facility: int,
        epoch: int,
        score: float,
        baseline: float,
        observed: int,
        global_loss: float,
        fingerprint: str,
    ) -> DisruptionReport:
        report = DisruptionReport(
            kind=kind,
            facility_id=facility,
            epoch=epoch,
            score=score,
            baseline=baseline,
            observed=observed,
            global_loss=global_loss,
            fingerprint=fingerprint,
        )
        self.reports.append(report)
        if self.instrumentation is not None:
            payload = {
                "facility_id": facility,
                "epoch": epoch,
                "score": round(score, 6),
                "baseline": round(baseline, 3),
                "observed": observed,
            }
            if kind == "alarm":
                self.instrumentation.emit("disrupt.alarm", **payload)
            else:
                self.instrumentation.emit("disrupt.clear", **payload)
        return report
