"""Autonomous systems: roles, peering policies, and per-AS state.

The paper's evaluation targets two populations with very different
peering engineering (Section 5, Figure 10): content/CDN networks
(Google, Yahoo, Akamai, Limelight, Cloudflare) that peer overwhelmingly
over public IXP fabrics, and global transit providers (NTT, Cogent,
Deutsche Telekom, Level3, Telia) with large private interconnect
footprints.  The topology builder instantiates ASes with a
:class:`ASRole` that drives footprint size, peering policy, and the
public/private mix, so the reproduced Figure 10 has the same contrast.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .addressing import Prefix

__all__ = [
    "ASRole",
    "PeeringPolicy",
    "IPIDMode",
    "AutonomousSystem",
]


class ASRole(enum.Enum):
    """Business role of an autonomous system."""

    #: Global transit-free backbone (Level3/NTT/Telia class).
    TIER1 = "tier1"
    #: Regional or national transit provider.
    TRANSIT = "transit"
    #: Content provider / CDN (Google/Akamai class).
    CONTENT = "content"
    #: Eyeball / access network.
    ACCESS = "access"
    #: Enterprise or small multi-homed stub.
    STUB = "stub"
    #: IXP port reseller providing remote-peering transport
    #: (Ethernet-over-MPLS carriers of Section 2).
    RESELLER = "reseller"


class PeeringPolicy(enum.Enum):
    """Published willingness to peer (PeeringDB vocabulary)."""

    OPEN = "open"
    SELECTIVE = "selective"
    RESTRICTIVE = "restrictive"


class IPIDMode(enum.Enum):
    """How a network's routers populate the IP-ID field.

    MIDAR's monotonic bounds test (Section 4.1) only works for routers
    that use a shared, increasing IP-ID counter across interfaces.  The
    paper notes that some routers are unresponsive to alias-resolution
    probes (e.g. Google) or return constant or random IP-IDs, producing
    false negatives; these modes reproduce that spectrum.
    """

    #: One monotonically increasing counter shared by all interfaces;
    #: MIDAR can resolve aliases.
    SHARED_COUNTER = "shared"
    #: Independent counters per interface; aliases are undetectable.
    PER_INTERFACE = "per-interface"
    #: Pseudo-random IP-IDs; aliases are undetectable.
    RANDOM = "random"
    #: IP-ID always zero (common for ICMP from some stacks).
    CONSTANT = "constant"
    #: Router does not answer alias-resolution probes at all.
    UNRESPONSIVE = "unresponsive"


@dataclass(slots=True)
class AutonomousSystem:
    """Ground-truth record of one AS in the generated Internet.

    Attributes:
        asn: the autonomous system number.
        name: human-readable operator name (also seeds DNS hostnames).
        role: business role; drives footprint and peering style.
        policy: published peering policy.
        home_metro: metro of the operator's headquarters; geolocation
            databases collapse CDN prefixes onto this metro, reproducing
            the "all of Google maps to California" pathology (Section 7).
        facility_ids: facilities where the AS has deployed routers
            (ground truth, not the PeeringDB view).
        ixp_ids: IXPs where the AS is a member with a local port.
        remote_ixp_ids: IXPs reached through a reseller (remote peering);
            disjoint from ``ixp_ids``.
        prefixes: address blocks announced in BGP by this AS.
        ipid_mode: IP-ID behaviour of this operator's routers.
        dns_scheme: key of the reverse-DNS naming scheme used by the
            operator, or ``None`` when the operator publishes no PTR
            records (29% of peering interfaces in the paper).
        runs_looking_glass: whether the AS operates a public looking
            glass (used to build the LG vantage-point population).
        lg_supports_bgp: whether that looking glass answers BGP queries
            such as ``show ip bgp`` (168 of 1877 in the paper).
        has_noc_page: whether the operator documents its colocation
            footprint on its NOC website (the Figure 2 source).
        transit_provider_asns: provider ASNs (Gao-Rexford relationships).
    """

    asn: int
    name: str
    role: ASRole
    policy: PeeringPolicy
    home_metro: str
    facility_ids: set[int] = field(default_factory=set)
    ixp_ids: set[int] = field(default_factory=set)
    remote_ixp_ids: set[int] = field(default_factory=set)
    prefixes: list[Prefix] = field(default_factory=list)
    ipid_mode: IPIDMode = IPIDMode.SHARED_COUNTER
    dns_scheme: str | None = None
    runs_looking_glass: bool = False
    lg_supports_bgp: bool = False
    has_noc_page: bool = False
    transit_provider_asns: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.asn <= 0 or self.asn >= 2**32:
            raise ValueError(f"invalid ASN {self.asn}")

    @property
    def all_ixp_ids(self) -> set[int]:
        """Local and remote IXP memberships combined."""
        return self.ixp_ids | self.remote_ixp_ids

    def is_member_of(self, ixp_id: int) -> bool:
        """True if the AS is a (local or remote) member of the IXP."""
        return ixp_id in self.ixp_ids or ixp_id in self.remote_ixp_ids

    def is_present_at(self, facility_id: int) -> bool:
        """True if the AS has ground-truth presence at the facility."""
        return facility_id in self.facility_ids
