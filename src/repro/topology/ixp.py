"""Internet exchange points: peering LANs and switch hierarchies.

Section 2 of the paper describes the physical layout this module
reproduces: an IXP operates one or more high-end *core* switches, and
deploys *access* switches inside partner colocation facilities; at scale,
several access switches aggregate into a *backhaul* switch which uplinks
to the core.  Members attached to the same access switch (or to access
switches behind the same backhaul) exchange traffic locally — the fact
exploited by the switch proximity heuristic of Section 4.4.

Members connect either locally (their router is in a partner facility) or
*remotely* through a reseller that hauls an Ethernet-over-MPLS circuit to
the exchange; roughly 20% of AMS-IX members peered remotely in 2013.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .addressing import Prefix

__all__ = ["SwitchKind", "Switch", "MemberPort", "IXP"]


class SwitchKind(enum.Enum):
    """Role of a switch in the IXP fabric hierarchy."""

    CORE = "core"
    BACKHAUL = "backhaul"
    ACCESS = "access"


@dataclass(frozen=True, slots=True)
class Switch:
    """One switch in an IXP fabric.

    Every switch is physically installed in a facility: access switches
    in partner facilities, backhaul and core switches in the exchange's
    hub facilities.
    """

    switch_id: int
    ixp_id: int
    kind: SwitchKind
    facility_id: int


@dataclass(frozen=True, slots=True)
class MemberPort:
    """Ground truth for one member's port at an IXP.

    Attributes:
        asn: the member AS.
        address: the peering-LAN IPv4 address assigned by the IXP to the
            member's IXP-facing router interface.
        access_switch_id: the access switch the port terminates on.  For
            a remote member this is the switch where the reseller's
            circuit lands.
        facility_id: facility of the member's *router* — the facility of
            the access switch for local members, ``None`` for remote
            members (their router is wherever the reseller hauls from).
        reseller_asn: the reseller carrying the circuit, or ``None`` for
            a local port.
    """

    asn: int
    address: int
    access_switch_id: int
    facility_id: int | None
    reseller_asn: int | None = None

    @property
    def is_remote(self) -> bool:
        """True when the port rides a reseller circuit."""
        return self.reseller_asn is not None


@dataclass(slots=True)
class IXP:
    """One Internet exchange point.

    Attributes:
        ixp_id: dense integer id.
        name: exchange name (e.g. the generated analogue of "DE-CIX").
        metro: primary metro of operation.
        country: ISO alpha-2 country code.
        region: continental region.
        peering_lans: address blocks of the shared peering fabric; a
            traceroute hop inside any of these blocks marks a public
            peering (CFS Step 1).
        asn: AS number assigned to the exchange itself (route servers).
        switches: fabric switches by id.
        uplinks: ``switch_id -> parent switch_id`` edges of the fabric
            tree (access to backhaul/core, backhaul to core).
        core_switch_id: the root of the fabric tree.
        member_ports: ground-truth member ports by member ASN.  A local
            member may hold several ports in different partner
            facilities (redundant connections, the two-facility AMS-IX
            members of Section 4.4); traffic from a peer enters at the
            fabric-proximate port.
        allocated_lan_hosts: LAN host addresses handed out so far.
        reseller_asns: resellers offering remote-peering transport here.
        has_route_server: whether multilateral peering is offered.
        active: inactive exchanges linger in public databases; the
            dataset layer must filter them out (Section 3.1.2).
    """

    ixp_id: int
    name: str
    metro: str
    country: str
    region: str
    peering_lans: list[Prefix]
    asn: int
    switches: dict[int, Switch] = field(default_factory=dict)
    uplinks: dict[int, int] = field(default_factory=dict)
    core_switch_id: int | None = None
    member_ports: dict[int, tuple[MemberPort, ...]] = field(default_factory=dict)
    allocated_lan_hosts: int = 0
    reseller_asns: set[int] = field(default_factory=set)
    has_route_server: bool = True
    active: bool = True

    # -- fabric construction -------------------------------------------------

    def add_switch(self, switch: Switch, parent_id: int | None = None) -> None:
        """Install a switch, optionally uplinked to ``parent_id``."""
        if switch.ixp_id != self.ixp_id:
            raise ValueError("switch belongs to a different IXP")
        if switch.switch_id in self.switches:
            raise ValueError(f"duplicate switch id {switch.switch_id}")
        if parent_id is not None and parent_id not in self.switches:
            raise ValueError(f"unknown parent switch {parent_id}")
        self.switches[switch.switch_id] = switch
        if switch.kind is SwitchKind.CORE:
            if self.core_switch_id is not None:
                raise ValueError("IXP already has a core switch")
            self.core_switch_id = switch.switch_id
        if parent_id is not None:
            self.uplinks[switch.switch_id] = parent_id

    # -- facility queries ----------------------------------------------------

    @property
    def facility_ids(self) -> set[int]:
        """All partner facilities (any switch deployed there)."""
        return {switch.facility_id for switch in self.switches.values()}

    def access_switch_at(self, facility_id: int) -> Switch | None:
        """The access switch in ``facility_id``, if any.

        The core switch also terminates member ports at its own facility,
        so it doubles as the access switch there when no dedicated access
        switch exists.
        """
        fallback: Switch | None = None
        for switch in self.switches.values():
            if switch.facility_id != facility_id:
                continue
            if switch.kind is SwitchKind.ACCESS:
                return switch
            if fallback is None or switch.kind is SwitchKind.CORE:
                fallback = switch
        return fallback

    def owns_address(self, address: int) -> bool:
        """True if ``address`` falls inside any peering LAN."""
        return any(address in lan for lan in self.peering_lans)

    # -- fabric topology queries (proximity heuristic, Section 4.4) ----------

    def _path_to_core(self, switch_id: int) -> list[int]:
        path = [switch_id]
        seen = {switch_id}
        current = switch_id
        while current in self.uplinks:
            current = self.uplinks[current]
            if current in seen:
                raise ValueError("cycle in IXP fabric uplinks")
            seen.add(current)
            path.append(current)
        return path

    def switch_hops(self, switch_a: int, switch_b: int) -> int:
        """Fabric hops between two switches through the uplink tree."""
        if switch_a not in self.switches or switch_b not in self.switches:
            raise KeyError("unknown switch id")
        if switch_a == switch_b:
            return 0
        path_a = self._path_to_core(switch_a)
        path_b = self._path_to_core(switch_b)
        ancestors_a = {sw: depth for depth, sw in enumerate(path_a)}
        for depth_b, sw in enumerate(path_b):
            if sw in ancestors_a:
                return ancestors_a[sw] + depth_b
        raise ValueError("fabric is not a single tree")

    def traffic_is_local(self, facility_a: int, facility_b: int) -> bool:
        """True if members at the two facilities exchange traffic without
        crossing the core switch.

        Confirmed operator practice (Section 4.4): ports on the same
        access switch, or on access switches behind the same backhaul
        switch, peer locally.
        """
        sw_a = self.access_switch_at(facility_a)
        sw_b = self.access_switch_at(facility_b)
        if sw_a is None or sw_b is None:
            raise KeyError("facility is not a partner of this IXP")
        if sw_a.switch_id == sw_b.switch_id:
            return True
        parent_a = self.uplinks.get(sw_a.switch_id)
        parent_b = self.uplinks.get(sw_b.switch_id)
        if parent_a is None or parent_b is None:
            return False
        if parent_a != parent_b:
            return False
        return self.switches[parent_a].kind is SwitchKind.BACKHAUL

    # -- membership ----------------------------------------------------------

    def add_member_port(self, port: MemberPort) -> None:
        """Register one member port (members may hold several)."""
        existing = self.member_ports.get(port.asn, ())
        self.member_ports[port.asn] = existing + (port,)

    def ports_of(self, asn: int) -> tuple[MemberPort, ...]:
        """All ports of one member (empty when not a member)."""
        return self.member_ports.get(asn, ())

    def primary_port(self, asn: int) -> MemberPort:
        """The member's first-installed port."""
        ports = self.member_ports.get(asn)
        if not ports:
            raise KeyError(f"AS{asn} is not a member of {self.name}")
        return ports[0]

    @property
    def member_asns(self) -> set[int]:
        """ASNs holding at least one port here."""
        return set(self.member_ports)

    def local_member_asns(self) -> set[int]:
        """Members with a router in a partner facility."""
        return {
            asn
            for asn, ports in self.member_ports.items()
            if any(not port.is_remote for port in ports)
        }

    def remote_member_asns(self) -> set[int]:
        """Members connected only through a reseller."""
        return {
            asn
            for asn, ports in self.member_ports.items()
            if ports and all(port.is_remote for port in ports)
        }

    def is_remote_member(self, asn: int) -> bool:
        """True when every port of the member rides a reseller circuit."""
        ports = self.member_ports.get(asn, ())
        return bool(ports) and all(port.is_remote for port in ports)
