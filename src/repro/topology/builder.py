"""Seeded generator of ground-truth Internet topologies.

The builder materialises everything Section 2 of the paper describes:
colocation operators with (possibly campus-connected) facilities spread
across metros with the heavy-tailed market sizes of Figure 3; IXPs with
core/backhaul/access switch fabrics spanning partner facilities; ASes of
six roles with footprints, addressing, routers and intra-AS backbones;
and interconnections of all four engineering types (public peering,
remote peering, cross-connects, tethering) plus customer-provider
transit realised as cross-connects.

Generation is fully deterministic given a :class:`TopologyConfig` seed:
the same config always yields the same topology, address-for-address,
which the test-suite and the benchmark harnesses rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from random import Random

from .addressing import Prefix, PrefixAllocator, ip_to_int
from .asn import ASRole, AutonomousSystem, IPIDMode, PeeringPolicy
from .facility import Facility, FacilityOperator
from .geo import DEFAULT_METROS, GeoLocation, Metro, MetroCatalogue, haversine_km
from .ixp import IXP, MemberPort, Switch, SwitchKind
from .links import BackboneLink, Interconnection, InterconnectionType, Relationship
from .network import Interface, InterfaceKind, Router
from .topology import Topology

__all__ = ["TopologyConfig", "TopologyBuilder", "build_topology"]


#: Private-interconnect links use /31 point-to-point subnets (RFC 3021).
_P2P_PREFIX_LEN = 31

#: Peering-LAN size per IXP.
_IXP_LAN_LEN = 22

#: Pool carved into per-AS aggregates.
_AS_POOL = Prefix(ip_to_int("16.0.0.0"), 4)

#: Pool carved into IXP peering LANs.
_IXP_POOL = Prefix(ip_to_int("185.0.0.0"), 8)

#: Aggregate size per AS role.
_AGGREGATE_LEN = {
    ASRole.TIER1: 13,
    ASRole.TRANSIT: 14,
    ASRole.CONTENT: 14,
    ASRole.ACCESS: 15,
    ASRole.STUB: 17,
    ASRole.RESELLER: 16,
}

#: Probability of joining an IXP whose facilities overlap the AS footprint.
_IXP_JOIN_PROB = {
    ASRole.TIER1: 0.35,
    ASRole.TRANSIT: 0.65,
    ASRole.CONTENT: 0.92,
    ASRole.ACCESS: 0.55,
    ASRole.STUB: 0.35,
    ASRole.RESELLER: 1.0,
}

#: IP-ID behaviour mix per role (mode, weight) — content providers skew
#: unresponsive (the paper could not alias-resolve Google's routers).
_IPID_MIX: dict[ASRole, tuple[tuple[IPIDMode, float], ...]] = {
    ASRole.CONTENT: (
        (IPIDMode.SHARED_COUNTER, 0.35),
        (IPIDMode.UNRESPONSIVE, 0.40),
        (IPIDMode.RANDOM, 0.15),
        (IPIDMode.CONSTANT, 0.10),
    ),
    ASRole.TIER1: (
        (IPIDMode.SHARED_COUNTER, 0.75),
        (IPIDMode.PER_INTERFACE, 0.10),
        (IPIDMode.RANDOM, 0.10),
        (IPIDMode.CONSTANT, 0.05),
    ),
}
_IPID_MIX_DEFAULT: tuple[tuple[IPIDMode, float], ...] = (
    (IPIDMode.SHARED_COUNTER, 0.68),
    (IPIDMode.PER_INTERFACE, 0.10),
    (IPIDMode.RANDOM, 0.10),
    (IPIDMode.CONSTANT, 0.06),
    (IPIDMode.UNRESPONSIVE, 0.06),
)

#: Reverse-DNS scheme mix: ~29% of peering interfaces had no PTR record
#: and 55% of the rest encoded no location (Section 5).
_DNS_SCHEME_MIX: tuple[tuple[str | None, float], ...] = (
    (None, 0.29),
    ("opaque", 0.36),
    ("airport", 0.12),
    ("clli", 0.08),
    ("facility", 0.10),
    ("city", 0.05),
)

_OPERATOR_NAMES = (
    "Equinor DC", "Telhaus", "Interxeon", "CoreSight", "Digital Realm",
    "CyrusOne-2", "Global Switchyard", "NTT-Annex", "DataBank Row",
    "Iron Peak", "Zayo Vault", "Colo-Nova", "EdgeConneX-2", "QTS-Prime",
    "Flexential-2", "Vantage Row", "Stack Infra", "Aligned Core",
)


def _weighted_choice(rng: Random, weighted: tuple[tuple[object, float], ...]):
    total = sum(weight for _, weight in weighted)
    roll = rng.random() * total
    acc = 0.0
    for value, weight in weighted:
        acc += weight
        if roll <= acc:
            return value
    return weighted[-1][0]


@dataclass(slots=True)
class TopologyConfig:
    """Knobs of the topology generator.

    The defaults produce a mid-size Internet suitable for benchmarks;
    :meth:`small` shrinks everything for unit tests and :meth:`large`
    approaches the paper's measurement scale.
    """

    seed: int = 42

    # AS population by role.
    n_tier1: int = 8
    n_transit: int = 28
    n_content: int = 10
    n_access: int = 80
    n_stub: int = 100
    n_reseller: int = 6

    # Physical plant.
    n_facilities: int = 150
    n_big_operators: int = 6
    big_operator_share: float = 0.6
    campus_prob: float = 0.7
    n_ixps: int = 22
    n_inactive_ixps: int = 3

    # Peering behaviour.
    #: Probability a local member with presence in several partner
    #: facilities installs a redundant second port (the two-facility
    #: members behind the Section 4.4 proximity experiment).
    dual_port_prob: float = 0.35
    remote_member_prob: float = 0.18
    route_server_prob: float = 0.75
    bilateral_public_prob: float = 0.35
    cross_connect_prob: float = 0.30
    tethering_prob: float = 0.08
    #: When a customer shares no building with its (secondary) provider,
    #: probability it reaches the provider by tethering over a common
    #: exchange instead of colocating (Section 2: "this type of private
    #: interconnect enables members of an IXP to privately reach
    #: networks located in other facilities ... e.g. transit providers
    #: or customers").
    transit_tether_prob: float = 0.5
    max_public_peers_per_member: int = 40

    # Backbone shape.
    extra_chord_prob: float = 0.3

    metros: tuple[Metro, ...] = field(default=DEFAULT_METROS)

    @classmethod
    def small(cls, seed: int = 42) -> "TopologyConfig":
        """A test-sized Internet (builds in well under a second)."""
        return cls(
            seed=seed,
            n_tier1=4,
            n_transit=10,
            n_content=5,
            n_access=24,
            n_stub=28,
            n_reseller=3,
            n_facilities=48,
            n_big_operators=4,
            n_ixps=9,
            n_inactive_ixps=2,
            max_public_peers_per_member=18,
        )

    @classmethod
    def large(cls, seed: int = 42) -> "TopologyConfig":
        """A benchmark-scale Internet approaching the paper's footprint."""
        return cls(
            seed=seed,
            n_tier1=10,
            n_transit=45,
            n_content=14,
            n_access=160,
            n_stub=220,
            n_reseller=8,
            n_facilities=320,
            n_big_operators=8,
            n_ixps=36,
            n_inactive_ixps=5,
        )

    @classmethod
    def xlarge(cls, seed: int = 42) -> "TopologyConfig":
        """A stress-scale Internet, roughly double :meth:`large`.

        Sized so that a campaign over it (see
        ``PipelineConfig.xlarge``) plans upward of 10⁶ traceroutes —
        the regime where multi-core extraction speedups are measurable
        rather than drowned in fork overhead.
        """
        return cls(
            seed=seed,
            n_tier1=14,
            n_transit=90,
            n_content=28,
            n_access=320,
            n_stub=440,
            n_reseller=10,
            n_facilities=640,
            n_big_operators=10,
            n_ixps=48,
            n_inactive_ixps=6,
        )

    def validate(self) -> None:
        """Reject configurations the builder cannot honour."""
        if self.n_tier1 < 2:
            raise ValueError("need at least two Tier-1 ASes")
        if self.n_facilities < len(self.metros) // 4:
            raise ValueError("too few facilities for the metro catalogue")
        if self.n_ixps < 1:
            raise ValueError("need at least one IXP")
        if not 0.0 <= self.remote_member_prob <= 1.0:
            raise ValueError("remote_member_prob must be a probability")
        if self.n_reseller < 1 and self.remote_member_prob > 0:
            raise ValueError("remote peering requires at least one reseller")


class TopologyBuilder:
    """Drives a :class:`TopologyConfig` to a finalized :class:`Topology`."""

    def __init__(self, config: TopologyConfig) -> None:
        config.validate()
        self.config = config
        self.rng = Random(config.seed)
        self.catalogue = MetroCatalogue(config.metros)
        self.topology = Topology(seed=config.seed, metros=self.catalogue)
        self._as_pool = PrefixAllocator(_AS_POOL)
        self._ixp_pool = PrefixAllocator(_IXP_POOL)
        self._as_allocators: dict[int, PrefixAllocator] = {}
        self._next_facility_id = 0
        self._next_router_id = 0
        self._next_link_id = 0
        self._next_switch_id = 0
        self._facilities_by_metro: dict[str, list[int]] = {}
        # Builder-local router index (the Topology indexes only exist
        # after finalize()).
        self._router_index: dict[tuple[int, int], Router] = {}
        # Customer-provider pairs realised over an exchange VLAN instead
        # of a shared building (resolved at transit-link time).
        self._deferred_transit: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def build(self) -> Topology:
        """Generate and finalize a topology."""
        self._build_facilities()
        self._build_ixps()
        self._build_ases()
        self._assign_footprints()
        self._choose_transit_relationships()
        self._place_routers()
        self._build_ixp_memberships()
        self._build_transit_links()
        self._build_public_peering()
        self._build_private_peering()
        self.topology.finalize()
        return self.topology

    # ------------------------------------------------------------------
    # Physical plant
    # ------------------------------------------------------------------

    def _apportion_facilities(self) -> dict[str, int]:
        """Largest-remainder apportionment of facilities to metros by
        market weight, preserving the Figure 3 heavy tail."""
        total_weight = sum(m.market_weight for m in self.catalogue)
        shares = {
            m.name: self.config.n_facilities * m.market_weight / total_weight
            for m in self.catalogue
        }
        counts = {name: int(math.floor(share)) for name, share in shares.items()}
        assigned = sum(counts.values())
        remainders = sorted(
            shares, key=lambda name: shares[name] - counts[name], reverse=True
        )
        for name in remainders:
            if assigned >= self.config.n_facilities:
                break
            counts[name] += 1
            assigned += 1
        return counts

    def _build_facilities(self) -> None:
        counts = self._apportion_facilities()
        big_operators = [
            FacilityOperator(operator_id=i, name=_OPERATOR_NAMES[i % len(_OPERATOR_NAMES)])
            for i in range(self.config.n_big_operators)
        ]
        for operator in big_operators:
            self.topology.operators[operator.operator_id] = operator
        next_operator_id = self.config.n_big_operators

        for metro in self.catalogue:
            n_here = counts.get(metro.name, 0)
            self._facilities_by_metro[metro.name] = []
            for index in range(n_here):
                # The configured share of facilities goes to the big
                # multi-metro operators; the rest to local one-building
                # companies.
                if self.rng.random() < self.config.big_operator_share:
                    operator = self.rng.choice(big_operators)
                else:
                    operator = FacilityOperator(
                        operator_id=next_operator_id,
                        name=f"{metro.name} Colo {next_operator_id}",
                    )
                    self.topology.operators[operator.operator_id] = operator
                    next_operator_id += 1
                facility_id = self._next_facility_id
                self._next_facility_id += 1
                jitter = GeoLocation(
                    max(-90.0, min(90.0, metro.location.latitude + self.rng.uniform(-0.05, 0.05))),
                    max(-180.0, min(180.0, metro.location.longitude + self.rng.uniform(-0.05, 0.05))),
                )
                facility = Facility(
                    facility_id=facility_id,
                    name=f"{operator.name} {metro.name} {index + 1}",
                    operator_id=operator.operator_id,
                    metro=metro.name,
                    country=metro.country,
                    region=metro.region,
                    location=jitter,
                )
                operator.facility_ids.add(facility_id)
                self.topology.facilities[facility_id] = facility
                self._facilities_by_metro[metro.name].append(facility_id)

        # Big operators connect their multi-building metros into campuses.
        for operator in big_operators:
            per_metro: dict[str, int] = {}
            for facility_id in operator.facility_ids:
                metro = self.topology.facilities[facility_id].metro
                per_metro[metro] = per_metro.get(metro, 0) + 1
            for metro, n_buildings in per_metro.items():
                if n_buildings >= 2 and self.rng.random() < self.config.campus_prob:
                    operator.connected_metros.add(metro)

    def _build_ixps(self) -> None:
        # IXPs go to the metros with the most facilities, biggest first;
        # large metros can host several exchanges (DE-CIX and ECIX share
        # Frankfurt, for example).
        metros_ranked = sorted(
            self._facilities_by_metro,
            key=lambda name: len(self._facilities_by_metro[name]),
            reverse=True,
        )
        metros_ranked = [m for m in metros_ranked if self._facilities_by_metro[m]]
        total = self.config.n_ixps + self.config.n_inactive_ixps
        # Exchanges concentrate in the big interconnection hubs: cycling
        # through only the top markets gives Frankfurt/London-style
        # metros several competing IXPs, whose partner facilities then
        # overlap — the precondition for the multi-IXP routers the paper
        # observes (11.9% of public-peering routers).
        hub_count = max(3, min(len(metros_ranked), (total + 1) // 2))
        hubs = metros_ranked[:hub_count]
        placements: list[str] = []
        rank = 0
        while len(placements) < total:
            placements.append(hubs[rank % len(hubs)])
            rank += 1

        for ixp_id, metro_name in enumerate(placements):
            metro = self.catalogue.resolve(metro_name)
            facilities_here = self._facilities_by_metro[metro_name]
            active = ixp_id < self.config.n_ixps
            # Bigger exchanges partner with more of the metro's buildings
            # (DE-CIX Frankfurt spans 18 facilities).  Every exchange
            # lands in the metro's flagship carrier hotel first — which
            # is why co-metro exchanges share buildings and members can
            # reach several fabrics from one router (Section 5).
            max_partners = max(1, len(facilities_here))
            n_partners = self.rng.randint(
                1, max_partners if active else min(2, max_partners)
            )
            flagship = facilities_here[0]
            rest = [f for f in facilities_here if f != flagship]
            partners = [flagship] + self.rng.sample(
                rest, min(n_partners - 1, len(rest))
            )
            lan = self._ixp_pool.allocate_prefix(_IXP_LAN_LEN)
            ixp = IXP(
                ixp_id=ixp_id,
                name=f"{metro_name.upper().replace(' ', '-')}-IX{ixp_id}",
                metro=metro_name,
                country=metro.country,
                region=metro.region,
                peering_lans=[lan],
                asn=59000 + ixp_id,
                has_route_server=self.rng.random() < 0.85,
                active=active,
            )
            self._build_fabric(ixp, partners)
            self.topology.ixps[ixp_id] = ixp
            for facility_id in partners:
                self.topology.facilities[facility_id].ixp_ids.add(ixp_id)

    def _build_fabric(self, ixp: IXP, partners: list[int]) -> None:
        """Install a core/backhaul/access switch tree across ``partners``."""
        hub = partners[0]
        core = Switch(
            switch_id=self._next_switch_id,
            ixp_id=ixp.ixp_id,
            kind=SwitchKind.CORE,
            facility_id=hub,
        )
        self._next_switch_id += 1
        ixp.add_switch(core)

        backhauls: list[Switch] = []
        if len(partners) > 4:
            n_backhauls = max(2, len(partners) // 4)
            for index in range(n_backhauls):
                backhaul_facility = partners[index % len(partners)]
                backhaul = Switch(
                    switch_id=self._next_switch_id,
                    ixp_id=ixp.ixp_id,
                    kind=SwitchKind.BACKHAUL,
                    facility_id=backhaul_facility,
                )
                self._next_switch_id += 1
                ixp.add_switch(backhaul, parent_id=core.switch_id)
                backhauls.append(backhaul)

        for index, facility_id in enumerate(partners):
            if backhauls:
                parent = backhauls[index % len(backhauls)].switch_id
            else:
                parent = core.switch_id
            access = Switch(
                switch_id=self._next_switch_id,
                ixp_id=ixp.ixp_id,
                kind=SwitchKind.ACCESS,
                facility_id=facility_id,
            )
            self._next_switch_id += 1
            ixp.add_switch(access, parent_id=parent)

    # ------------------------------------------------------------------
    # AS population
    # ------------------------------------------------------------------

    def _make_as(self, asn: int, name: str, role: ASRole, policy: PeeringPolicy) -> AutonomousSystem:
        home = self.rng.choice(self.catalogue.metros).name
        mix = _IPID_MIX.get(role, _IPID_MIX_DEFAULT)
        record = AutonomousSystem(
            asn=asn,
            name=name,
            role=role,
            policy=policy,
            home_metro=home,
            ipid_mode=_weighted_choice(self.rng, mix),
            dns_scheme=_weighted_choice(self.rng, _DNS_SCHEME_MIX),
        )
        aggregate = self._as_pool.allocate_prefix(_AGGREGATE_LEN[role])
        record.prefixes.append(aggregate)
        self._as_allocators[asn] = PrefixAllocator(aggregate)
        if role in (ASRole.TIER1, ASRole.TRANSIT):
            record.runs_looking_glass = self.rng.random() < 0.55
        elif role is ASRole.ACCESS:
            record.runs_looking_glass = self.rng.random() < 0.20
        record.lg_supports_bgp = (
            record.runs_looking_glass and self.rng.random() < 0.25
        )
        # Large operators document their colocation footprints on NOC
        # pages (Section 3.1.1 scraped them for exactly these networks);
        # small edge networks rarely bother.
        noc_prob = {
            ASRole.TIER1: 0.85,
            ASRole.TRANSIT: 0.75,
            ASRole.CONTENT: 0.85,
            ASRole.RESELLER: 0.6,
            ASRole.ACCESS: 0.45,
            ASRole.STUB: 0.25,
        }[role]
        record.has_noc_page = self.rng.random() < noc_prob
        self.topology.ases[asn] = record
        return record

    def _build_ases(self) -> None:
        cfg = self.config
        for i in range(cfg.n_tier1):
            self._make_as(3000 + i, f"tier1-{i}", ASRole.TIER1, PeeringPolicy.RESTRICTIVE)
        for i in range(cfg.n_transit):
            policy = PeeringPolicy.SELECTIVE if self.rng.random() < 0.6 else PeeringPolicy.OPEN
            self._make_as(6000 + i, f"transit-{i}", ASRole.TRANSIT, policy)
        for i in range(cfg.n_content):
            self._make_as(15000 + i, f"cdn-{i}", ASRole.CONTENT, PeeringPolicy.OPEN)
        for i in range(cfg.n_access):
            policy = PeeringPolicy.OPEN if self.rng.random() < 0.7 else PeeringPolicy.SELECTIVE
            self._make_as(30000 + i, f"access-{i}", ASRole.ACCESS, policy)
        for i in range(cfg.n_stub):
            self._make_as(50000 + i, f"stub-{i}", ASRole.STUB, PeeringPolicy.OPEN)
        for i in range(cfg.n_reseller):
            self._make_as(45000 + i, f"reseller-{i}", ASRole.RESELLER, PeeringPolicy.OPEN)

    def _metro_sample(self, n: int, bias_region: str | None = None) -> list[Metro]:
        """Weighted sample of ``n`` distinct metros, optionally biased to
        one region (regional players cluster near home)."""
        metros = list(self.catalogue.metros)
        weights = []
        for metro in metros:
            weight = metro.market_weight
            if bias_region is not None and metro.region == bias_region:
                weight *= 6.0
            weights.append(weight)
        chosen: list[Metro] = []
        pool = list(zip(metros, weights))
        for _ in range(min(n, len(metros))):
            total = sum(w for _, w in pool)
            roll = self.rng.random() * total
            acc = 0.0
            for index, (metro, weight) in enumerate(pool):
                acc += weight
                if roll <= acc:
                    chosen.append(metro)
                    pool.pop(index)
                    break
        return chosen

    def _footprint_for(self, record: AutonomousSystem) -> None:
        """Pick ground-truth facility presence for one AS."""
        home_region = self.catalogue.resolve(record.home_metro).region
        role = record.role
        if role is ASRole.TIER1:
            metros = self._metro_sample(self.rng.randint(14, 24))
            per_metro = (1, 3)
        elif role is ASRole.TRANSIT:
            metros = self._metro_sample(self.rng.randint(3, 9), bias_region=home_region)
            per_metro = (1, 2)
        elif role is ASRole.CONTENT:
            metros = self._metro_sample(self.rng.randint(8, 18))
            per_metro = (1, 2)
        elif role is ASRole.ACCESS:
            metros = self._metro_sample(self.rng.randint(1, 3), bias_region=home_region)
            per_metro = (1, 2)
        elif role is ASRole.RESELLER:
            metros = self._metro_sample(self.rng.randint(4, 8))
            per_metro = (1, 1)
        else:  # STUB
            metros = self._metro_sample(1, bias_region=home_region)
            per_metro = (1, 1)

        for metro in metros:
            available = self._facilities_by_metro.get(metro.name, [])
            if not available:
                continue
            want = self.rng.randint(*per_metro)
            # Content providers and resellers deliberately pick buildings
            # that host IXP access switches.
            if role in (ASRole.CONTENT, ASRole.RESELLER):
                ranked = sorted(
                    available,
                    key=lambda fid: -len(self.topology.facilities[fid].ixp_ids),
                )
                picks = ranked[: min(want, len(ranked))]
            else:
                picks = self.rng.sample(available, min(want, len(available)))
            record.facility_ids.update(picks)

        if not record.facility_ids:
            # Guarantee at least one building anywhere.
            any_metro = self.rng.choice(
                [m for m, f in self._facilities_by_metro.items() if f]
            )
            record.facility_ids.add(self.rng.choice(self._facilities_by_metro[any_metro]))

    def _assign_footprints(self) -> None:
        for record in self.topology.ases.values():
            self._footprint_for(record)

    # ------------------------------------------------------------------
    # Transit relationships (AS level)
    # ------------------------------------------------------------------

    def _providers_pool(self, role: ASRole) -> list[AutonomousSystem]:
        if role in (ASRole.TRANSIT,):
            roles = (ASRole.TIER1,)
        else:
            roles = (ASRole.TIER1, ASRole.TRANSIT)
        return [a for a in self.topology.ases.values() if a.role in roles]

    def _choose_transit_relationships(self) -> None:
        """Give every non-Tier-1 AS one or two providers; when customer
        and provider share no building, the customer colocates into one
        of the provider's facilities (footprint follows transit).

        Tier-1s are transit-free, so global reachability requires the
        Tier-1 clique: every Tier-1 pair is guaranteed a common facility
        here and a private interconnect in :meth:`_build_private_peering`.
        """
        tier1s = sorted(
            (a for a in self.topology.ases.values() if a.role is ASRole.TIER1),
            key=lambda a: a.asn,
        )
        for i, record_a in enumerate(tier1s):
            for record_b in tier1s[i + 1 :]:
                if not record_a.facility_ids & record_b.facility_ids:
                    record_a.facility_ids.add(
                        self.rng.choice(sorted(record_b.facility_ids))
                    )
        for record in self.topology.ases.values():
            if record.role is ASRole.TIER1:
                continue
            pool = self._providers_pool(record.role)
            pool = [p for p in pool if p.asn != record.asn]
            if not pool:
                continue
            n_providers = self.rng.randint(1, 2)
            # The primary provider is preferentially colocated; a second
            # provider is picked for path diversity from the whole pool
            # (it frequently shares no building — the tethering case).
            overlapping = [
                p for p in pool if p.facility_ids & record.facility_ids
            ]
            providers: list[AutonomousSystem] = []
            primary_candidates = overlapping or pool
            primary = self.rng.choice(primary_candidates)
            providers.append(primary)
            if n_providers > 1:
                rest = [p for p in pool if p.asn != primary.asn]
                if rest:
                    providers.append(self.rng.choice(rest))
            for index, provider in enumerate(providers):
                record.transit_provider_asns.add(provider.asn)
                if not provider.facility_ids & record.facility_ids:
                    # A secondary provider may be reached by tethering
                    # over a common exchange instead of colocating; the
                    # primary provider always shares a building so the
                    # customer stays reachable regardless.
                    if (
                        index > 0
                        and self.rng.random() < self.config.transit_tether_prob
                    ):
                        self._deferred_transit.add((record.asn, provider.asn))
                        continue
                    record.facility_ids.add(
                        self.rng.choice(sorted(provider.facility_ids))
                    )

    # ------------------------------------------------------------------
    # Routers, loopbacks, intra-AS backbone
    # ------------------------------------------------------------------

    def _place_routers(self) -> None:
        for record in self.topology.ases.values():
            router_ids: list[int] = []
            for index, facility_id in enumerate(sorted(record.facility_ids)):
                router = Router(
                    router_id=self._next_router_id,
                    asn=record.asn,
                    facility_id=facility_id,
                    hostname_label=f"edge{index + 1}",
                )
                self._next_router_id += 1
                self.topology.routers[router.router_id] = router
                self._router_index[(record.asn, facility_id)] = router
                allocator = self._as_allocators[record.asn]
                loopback = allocator.allocate_address()
                self.topology.add_interface(
                    Interface(
                        address=loopback,
                        router_id=router.router_id,
                        kind=InterfaceKind.LOOPBACK,
                        space_owner_asn=record.asn,
                    )
                )
                # A responsive host behind the router: the target class
                # real campaigns probe (servers, hitlist addresses).
                host = allocator.allocate_address()
                self.topology.add_interface(
                    Interface(
                        address=host,
                        router_id=router.router_id,
                        kind=InterfaceKind.HOST,
                        space_owner_asn=record.asn,
                    )
                )
                router_ids.append(router.router_id)
            self._wire_backbone(record.asn, router_ids)

    def _router_distance(self, a: int, b: int) -> float:
        return haversine_km(
            self.topology.router_location(a), self.topology.router_location(b)
        )

    def _add_backbone_link(self, asn: int, router_a: int, router_b: int) -> None:
        allocator = self._as_allocators[asn]
        prefix = allocator.allocate_prefix(_P2P_PREFIX_LEN)
        addresses = list(prefix.hosts())
        link = BackboneLink(
            link_id=self._next_link_id,
            asn=asn,
            router_a=router_a,
            router_b=router_b,
            prefix=prefix,
        )
        self._next_link_id += 1
        self.topology.backbone_links[link.link_id] = link
        for router_id, address in ((router_a, addresses[0]), (router_b, addresses[1])):
            self.topology.add_interface(
                Interface(
                    address=address,
                    router_id=router_id,
                    kind=InterfaceKind.BACKBONE,
                    space_owner_asn=asn,
                    link_id=link.link_id,
                )
            )

    def _wire_backbone(self, asn: int, router_ids: list[int]) -> None:
        """Connect an AS's routers: nearest-neighbour spanning tree plus
        occasional chords for path diversity."""
        if len(router_ids) < 2:
            return
        connected = [router_ids[0]]
        for router_id in router_ids[1:]:
            nearest = min(
                connected, key=lambda other: self._router_distance(router_id, other)
            )
            self._add_backbone_link(asn, router_id, nearest)
            if len(connected) >= 2 and self.rng.random() < self.config.extra_chord_prob:
                second = min(
                    (r for r in connected if r != nearest),
                    key=lambda other: self._router_distance(router_id, other),
                )
                self._add_backbone_link(asn, router_id, second)
            connected.append(router_id)

    # ------------------------------------------------------------------
    # IXP membership and ports
    # ------------------------------------------------------------------

    def _router_at(self, asn: int, facility_id: int) -> Router:
        router = self._router_index.get((asn, facility_id))
        if router is None:
            raise LookupError(f"AS{asn} has no router at facility {facility_id}")
        return router

    def _build_ixp_memberships(self) -> None:
        active_ixps = [ixp for ixp in self.topology.ixps.values() if ixp.active]
        # Resellers join first so remote members can ride their circuits.
        ordered = sorted(
            self.topology.ases.values(),
            key=lambda a: 0 if a.role is ASRole.RESELLER else 1,
        )
        for record in ordered:
            for ixp in active_ixps:
                common = record.facility_ids & ixp.facility_ids
                if common:
                    if self.rng.random() < _IXP_JOIN_PROB[record.role]:
                        self._join_local(record, ixp, common)
                elif record.role is not ASRole.RESELLER:
                    if self.rng.random() < self._remote_join_prob(record):
                        self._join_remote(record, ixp)

    def _remote_join_prob(self, record: AutonomousSystem) -> float:
        base = {
            ASRole.CONTENT: 0.10,
            ASRole.ACCESS: 0.05,
            ASRole.STUB: 0.03,
            ASRole.TRANSIT: 0.03,
            ASRole.TIER1: 0.0,
            ASRole.RESELLER: 0.0,
        }[record.role]
        return base * (self.config.remote_member_prob / 0.18)

    def _allocate_lan_address(self, ixp: IXP) -> int:
        lan = ixp.peering_lans[0]
        ixp.allocated_lan_hosts += 1
        address = lan.network + ixp.allocated_lan_hosts  # skips network addr
        if address >= lan.last:
            raise RuntimeError(f"peering LAN of {ixp.name} exhausted")
        return address

    def _install_port(
        self,
        record: AutonomousSystem,
        ixp: IXP,
        facility_id: int,
        reseller_asn: int | None = None,
        access_switch_id: int | None = None,
        router_facility: int | None = None,
    ) -> MemberPort:
        """Create one member port: LAN address + router interface."""
        if access_switch_id is None:
            switch = ixp.access_switch_at(facility_id)
            assert switch is not None
            access_switch_id = switch.switch_id
        router = self._router_at(
            record.asn,
            router_facility if router_facility is not None else facility_id,
        )
        address = self._allocate_lan_address(ixp)
        port = MemberPort(
            asn=record.asn,
            address=address,
            access_switch_id=access_switch_id,
            facility_id=None if reseller_asn is not None else facility_id,
            reseller_asn=reseller_asn,
        )
        ixp.add_member_port(port)
        self.topology.add_interface(
            Interface(
                address=address,
                router_id=router.router_id,
                kind=InterfaceKind.IXP_LAN,
                space_owner_asn=ixp.asn,
                ixp_id=ixp.ixp_id,
            )
        )
        return port

    def _join_local(self, record: AutonomousSystem, ixp: IXP, common: set[int]) -> None:
        ordered = sorted(common)
        # Members favour their best-connected building: landing the port
        # where other exchanges also have switches is what produces the
        # multi-IXP routers of Section 5 (11.9% of public routers).
        if len(ordered) > 1 and self.rng.random() < 0.7:
            first = max(
                ordered,
                key=lambda fid: (len(self.topology.facilities[fid].ixp_ids), -fid),
            )
        else:
            first = self.rng.choice(ordered)
        self._install_port(record, ixp, first)
        record.ixp_ids.add(ixp.ixp_id)
        # Redundant second port in another partner building, when the
        # member's footprint allows it.
        others = [f for f in ordered if f != first]
        if others and self.rng.random() < self.config.dual_port_prob:
            self._install_port(record, ixp, self.rng.choice(others))

    def _join_remote(self, record: AutonomousSystem, ixp: IXP) -> None:
        resellers = [
            self.topology.ases[asn]
            for asn in ixp.reseller_asns
        ] or [
            a
            for a in self.topology.ases.values()
            if a.role is ASRole.RESELLER and ixp.ixp_id in a.ixp_ids
        ]
        if not resellers:
            return
        reseller = self.rng.choice(sorted(resellers, key=lambda a: a.asn))
        ixp.reseller_asns.add(reseller.asn)
        landing_port = ixp.primary_port(reseller.asn)
        # The remote member's router stays in one of its own buildings.
        home_facility = self.rng.choice(sorted(record.facility_ids))
        self._install_port(
            record,
            ixp,
            facility_id=home_facility,
            reseller_asn=reseller.asn,
            access_switch_id=landing_port.access_switch_id,
            router_facility=home_facility,
        )
        record.remote_ixp_ids.add(ixp.ixp_id)

    # ------------------------------------------------------------------
    # Interconnections
    # ------------------------------------------------------------------

    def _add_private_link(
        self,
        kind: InterconnectionType,
        relationship: Relationship,
        asn_a: int,
        router_a: Router,
        asn_b: int,
        router_b: Router,
        ixp_id: int | None,
        owner_asn: int,
    ) -> Interconnection:
        allocator = self._as_allocators[owner_asn]
        prefix = allocator.allocate_prefix(_P2P_PREFIX_LEN)
        addresses = list(prefix.hosts())
        link = Interconnection(
            link_id=self._next_link_id,
            kind=kind,
            relationship=relationship,
            asn_a=asn_a,
            asn_b=asn_b,
            router_a=router_a.router_id,
            router_b=router_b.router_id,
            facility_a=router_a.facility_id,
            facility_b=router_b.facility_id,
            ixp_id=ixp_id,
            p2p_prefix=prefix,
            p2p_owner_asn=owner_asn,
        )
        self._next_link_id += 1
        self.topology.interconnections[link.link_id] = link
        for router, address in ((router_a, addresses[0]), (router_b, addresses[1])):
            self.topology.add_interface(
                Interface(
                    address=address,
                    router_id=router.router_id,
                    kind=InterfaceKind.PRIVATE_P2P,
                    space_owner_asn=owner_asn,
                    link_id=link.link_id,
                )
            )
        return link

    def _build_transit_links(self) -> None:
        """Realise every customer-provider relationship: a private
        cross-connect in a shared building, or — for deferred pairs — a
        tethering VLAN over a common exchange (Section 2)."""
        for record in self.topology.ases.values():
            for provider_asn in sorted(record.transit_provider_asns):
                provider = self.topology.ases[provider_asn]
                if (record.asn, provider_asn) in self._deferred_transit:
                    if self._add_transit_tether(record, provider):
                        continue
                    # No shared exchange after membership assignment:
                    # the relationship cannot be realised; drop it (the
                    # primary provider keeps the customer connected).
                    record.transit_provider_asns.discard(provider_asn)
                    continue
                common = sorted(record.facility_ids & provider.facility_ids)
                if not common:  # pragma: no cover - prevented upstream
                    continue
                facility_id = self.rng.choice(common)
                self._add_private_link(
                    InterconnectionType.PRIVATE_CROSS_CONNECT,
                    Relationship.CUSTOMER_PROVIDER,
                    record.asn,
                    self._router_at(record.asn, facility_id),
                    provider_asn,
                    self._router_at(provider_asn, facility_id),
                    ixp_id=None,
                    owner_asn=provider_asn,  # the provider numbers the link
                )

    def _add_transit_tether(
        self, record: AutonomousSystem, provider: AutonomousSystem
    ) -> bool:
        """Reach a provider over a common exchange fabric, if any."""
        shared_ixps = sorted(
            (record.ixp_ids | record.remote_ixp_ids)
            & (provider.ixp_ids | provider.remote_ixp_ids)
        )
        if not shared_ixps:
            return False
        ixp = self.topology.ixps[shared_ixps[0]]
        self._add_private_link(
            InterconnectionType.TETHERING,
            Relationship.CUSTOMER_PROVIDER,
            record.asn,
            self._port_router(ixp, record.asn),
            provider.asn,
            self._port_router(ixp, provider.asn),
            ixp_id=ixp.ixp_id,
            owner_asn=provider.asn,
        )
        return True

    def _want_public_peering(self, a: AutonomousSystem, b: AutonomousSystem) -> bool:
        if b.asn in a.transit_provider_asns or a.asn in b.transit_provider_asns:
            return False
        restrictive = PeeringPolicy.RESTRICTIVE
        if a.policy is restrictive or b.policy is restrictive:
            return self.rng.random() < 0.05
        return True

    def _build_public_peering(self) -> None:
        """Multilateral peering via route servers plus bilateral sessions.

        Every materialised session between two member ports becomes one
        :class:`Interconnection` of kind PUBLIC_PEERING (or
        REMOTE_PEERING when either port rides a reseller circuit).
        """
        for ixp in self.topology.ixps.values():
            if not ixp.active:
                continue
            members = sorted(ixp.member_ports)
            rs_users = {
                asn
                for asn in members
                if ixp.has_route_server and self.rng.random() < self.config.route_server_prob
            }
            peer_counts = {asn: 0 for asn in members}
            base_cap = self.config.max_public_peers_per_member

            def cap_of(asn: int) -> int:
                # Content networks peer openly with most of the member
                # base (the Figure 10 public skew); others keep a
                # bounded session count.
                if self.topology.ases[asn].role is ASRole.CONTENT:
                    return base_cap * 4
                return base_cap

            for i, asn_a in enumerate(members):
                for asn_b in members[i + 1 :]:
                    if peer_counts[asn_a] >= cap_of(asn_a) or peer_counts[asn_b] >= cap_of(asn_b):
                        continue
                    record_a = self.topology.ases[asn_a]
                    record_b = self.topology.ases[asn_b]
                    if not self._want_public_peering(record_a, record_b):
                        continue
                    via_rs = asn_a in rs_users and asn_b in rs_users
                    if not via_rs and self.rng.random() >= self.config.bilateral_public_prob:
                        continue
                    self._add_public_link(ixp, asn_a, asn_b, via_rs)
                    peer_counts[asn_a] += 1
                    peer_counts[asn_b] += 1

    def _router_of_port(self, port: MemberPort) -> Router:
        interface = self.topology.interfaces[port.address]
        return self.topology.routers[interface.router_id]

    def _port_router(self, ixp: IXP, asn: int) -> Router:
        return self._router_of_port(ixp.primary_port(asn))

    def _select_port_pair(
        self, ixp: IXP, asn_a: int, asn_b: int
    ) -> tuple[MemberPort, MemberPort]:
        """Fabric-proximate port pair for a session between two members.

        Operators confirmed (Section 4.4) that traffic between members
        stays on the nearest shared switch, so a multi-port member is
        reached through the port closest to its peer in the fabric tree.
        """
        best: tuple[int, int, int] | None = None
        best_pair: tuple[MemberPort, MemberPort] | None = None
        for port_a in ixp.ports_of(asn_a):
            for port_b in ixp.ports_of(asn_b):
                hops = ixp.switch_hops(
                    port_a.access_switch_id, port_b.access_switch_id
                )
                key = (hops, port_a.address, port_b.address)
                if best is None or key < best:
                    best = key
                    best_pair = (port_a, port_b)
        assert best_pair is not None
        return best_pair

    def _add_public_link(self, ixp: IXP, asn_a: int, asn_b: int, via_rs: bool) -> None:
        port_a, port_b = self._select_port_pair(ixp, asn_a, asn_b)
        router_a = self._router_of_port(port_a)
        router_b = self._router_of_port(port_b)
        kind = (
            InterconnectionType.REMOTE_PEERING
            if port_a.is_remote or port_b.is_remote
            else InterconnectionType.PUBLIC_PEERING
        )
        link = Interconnection(
            link_id=self._next_link_id,
            kind=kind,
            relationship=Relationship.PEER_PEER,
            asn_a=asn_a,
            asn_b=asn_b,
            router_a=router_a.router_id,
            router_b=router_b.router_id,
            facility_a=router_a.facility_id,
            facility_b=router_b.facility_id,
            ixp_id=ixp.ixp_id,
            via_route_server=via_rs,
        )
        self._next_link_id += 1
        self.topology.interconnections[link.link_id] = link

    def _build_private_peering(self) -> None:
        """Cross-connects between co-located peers, and tethering between
        IXP members that lack a common building."""
        ases = sorted(self.topology.ases.values(), key=lambda a: a.asn)
        for i, record_a in enumerate(ases):
            for record_b in ases[i + 1 :]:
                if record_b.asn in record_a.transit_provider_asns:
                    continue
                if record_a.asn in record_b.transit_provider_asns:
                    continue
                if record_a.role is ASRole.STUB and record_b.role is ASRole.STUB:
                    continue
                common = self._cross_connectable(record_a, record_b)
                if common:
                    if self.rng.random() < self._xconn_prob(record_a, record_b):
                        facility_a, facility_b = self.rng.choice(sorted(common))
                        owner = max(record_a, record_b, key=lambda r: r.role is ASRole.TIER1).asn
                        self._add_private_link(
                            InterconnectionType.PRIVATE_CROSS_CONNECT,
                            Relationship.PEER_PEER,
                            record_a.asn,
                            self._router_at(record_a.asn, facility_a),
                            record_b.asn,
                            self._router_at(record_b.asn, facility_b),
                            ixp_id=None,
                            owner_asn=owner,
                        )
                else:
                    shared_ixps = sorted(
                        (record_a.ixp_ids & record_b.ixp_ids)
                        | (record_a.ixp_ids & record_b.remote_ixp_ids)
                        | (record_a.remote_ixp_ids & record_b.ixp_ids)
                    )
                    if shared_ixps and self.rng.random() < self.config.tethering_prob:
                        ixp = self.topology.ixps[shared_ixps[0]]
                        router_a = self._port_router(ixp, record_a.asn)
                        router_b = self._port_router(ixp, record_b.asn)
                        self._add_private_link(
                            InterconnectionType.TETHERING,
                            Relationship.PEER_PEER,
                            record_a.asn,
                            router_a,
                            record_b.asn,
                            router_b,
                            ixp_id=ixp.ixp_id,
                            owner_asn=record_a.asn,
                        )

    def _cross_connectable(
        self, a: AutonomousSystem, b: AutonomousSystem
    ) -> set[tuple[int, int]]:
        """Facility pairs where the two ASes could order a cross-connect:
        same building, or two buildings of one operator's campus."""
        pairs: set[tuple[int, int]] = set()
        for facility_a in a.facility_ids:
            campus = self.topology.campus_facilities(facility_a)
            for facility_b in b.facility_ids & campus:
                pairs.add((facility_a, facility_b))
        return pairs

    def _xconn_prob(self, a: AutonomousSystem, b: AutonomousSystem) -> float:
        roles = {a.role, b.role}
        base = self.config.cross_connect_prob
        if roles == {ASRole.TIER1}:
            return 1.0  # the Tier-1 clique always interconnects privately
        if ASRole.CONTENT in roles:
            # CDNs overwhelmingly prefer the public fabric (Figure 10);
            # they keep PNIs for the highest-volume eyeball relationships.
            return base * 0.5
        if ASRole.STUB in roles:
            return base * 0.3
        return base


def build_topology(config: TopologyConfig | None = None) -> Topology:
    """Convenience wrapper: build a topology from ``config`` (or defaults)."""
    return TopologyBuilder(config or TopologyConfig()).build()
