"""IPv4 addressing substrate: prefixes, allocation, longest-prefix match.

The measurement pipeline of the paper leans on IP-layer bookkeeping in
three places:

* every router interface carries an IPv4 address drawn from its
  operator's allocations (or from an IXP peering LAN, Section 2);
* the Team Cymru IP-to-ASN service (Section 4.1) is a longest-prefix
  match over BGP-announced prefixes;
* detecting that a traceroute hop lies inside IXP address space (Step 1
  of Constrained Facility Search) is a membership test against the IXP
  prefix list.

Addresses are plain ``int`` values internally (fast set/dict keys); the
:class:`Prefix` and :class:`PrefixAllocator` types provide structured
views, and :class:`LongestPrefixMatcher` is a binary trie supporting the
Cymru-style lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Iterator, TypeVar

__all__ = [
    "MAX_IPV4",
    "ip_to_int",
    "int_to_ip",
    "Prefix",
    "PrefixAllocator",
    "PoolExhaustedError",
    "LongestPrefixMatcher",
]

MAX_IPV4 = (1 << 32) - 1

V = TypeVar("V")


def ip_to_int(dotted: str) -> int:
    """Parse a dotted-quad IPv4 address into an integer.

    Raises ``ValueError`` for anything that is not exactly four decimal
    octets in range.
    """
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {dotted!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise ValueError(f"bad octet {part!r} in {dotted!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"octet out of range in {dotted!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format an integer as a dotted-quad IPv4 address."""
    if not 0 <= value <= MAX_IPV4:
        raise ValueError(f"not a 32-bit value: {value}")
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


@dataclass(frozen=True, slots=True, order=True)
class Prefix:
    """An IPv4 CIDR prefix with integer internals.

    ``network`` must be aligned to ``length`` (host bits zero); the
    constructor enforces this so prefixes are canonical and hashable.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"bad prefix length {self.length}")
        if not 0 <= self.network <= MAX_IPV4:
            raise ValueError("network out of 32-bit range")
        if self.network & self.host_mask:
            raise ValueError(
                f"{int_to_ip(self.network)}/{self.length} has host bits set"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` notation."""
        try:
            network_part, length_part = text.split("/")
        except ValueError:
            raise ValueError(f"not CIDR notation: {text!r}") from None
        return cls(ip_to_int(network_part), int(length_part))

    @property
    def netmask(self) -> int:
        """The network mask as an integer."""
        if self.length == 0:
            return 0
        return (MAX_IPV4 << (32 - self.length)) & MAX_IPV4

    @property
    def host_mask(self) -> int:
        """The host-bits mask (inverse of the netmask)."""
        return MAX_IPV4 >> self.length if self.length else MAX_IPV4

    @property
    def first(self) -> int:
        """First address covered by the prefix."""
        return self.network

    @property
    def last(self) -> int:
        """Last address covered by the prefix."""
        return self.network | self.host_mask

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered."""
        return 1 << (32 - self.length)

    def __contains__(self, address: int) -> bool:
        return self.first <= address <= self.last

    def contains_prefix(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or more specific than this prefix."""
        return other.length >= self.length and other.network & self.netmask == self.network

    def overlaps(self, other: "Prefix") -> bool:
        """True if the two prefixes share any address."""
        return self.contains_prefix(other) or other.contains_prefix(self)

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Iterate the subnets of this prefix at ``new_length``."""
        if new_length < self.length or new_length > 32:
            raise ValueError(
                f"cannot split /{self.length} into /{new_length}"
            )
        step = 1 << (32 - new_length)
        for network in range(self.first, self.last + 1, step):
            yield Prefix(network, new_length)

    def hosts(self) -> Iterator[int]:
        """Iterate assignable host addresses.

        For /31 and /32 every address is assignable (point-to-point
        convention, RFC 3021); otherwise the network and broadcast
        addresses are skipped.
        """
        if self.length >= 31:
            yield from range(self.first, self.last + 1)
        else:
            yield from range(self.first + 1, self.last)

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.length}"


class PoolExhaustedError(RuntimeError):
    """Raised when a :class:`PrefixAllocator` pool has no space left."""


class PrefixAllocator:
    """Sequential carver of subnets and host addresses out of a pool.

    The topology builder gives each AS (and each IXP peering LAN) a pool
    and draws interface subnets from it.  Allocation is strictly
    sequential so a seeded build is reproducible address-for-address.
    """

    def __init__(self, pool: Prefix) -> None:
        self._pool = pool
        self._cursor = pool.first

    @property
    def pool(self) -> Prefix:
        """The pool this allocator carves from."""
        return self._pool

    @property
    def remaining(self) -> int:
        """Number of unallocated addresses left in the pool."""
        return self._pool.last - self._cursor + 1

    def allocate_prefix(self, length: int) -> Prefix:
        """Carve the next aligned subnet of ``length`` out of the pool."""
        if length < self._pool.length or length > 32:
            raise ValueError(
                f"cannot allocate /{length} from /{self._pool.length}"
            )
        size = 1 << (32 - length)
        # Align the cursor up to the subnet size.
        aligned = (self._cursor + size - 1) & ~(size - 1)
        if aligned + size - 1 > self._pool.last:
            raise PoolExhaustedError(
                f"pool {self._pool} exhausted allocating /{length}"
            )
        self._cursor = aligned + size
        return Prefix(aligned, length)

    def allocate_address(self) -> int:
        """Carve a single address (a /32) out of the pool."""
        return self.allocate_prefix(32).network


class _TrieNode(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: list["_TrieNode[V]" | None] = [None, None]
        self.value: V | None = None
        self.has_value = False


class LongestPrefixMatcher(Generic[V]):
    """A binary trie mapping IPv4 prefixes to values.

    ``lookup`` returns the value of the most specific prefix covering an
    address, mirroring how the Team Cymru service resolves an interface
    address to the origin AS of its longest matching BGP announcement.
    """

    def __init__(self) -> None:
        self._root: _TrieNode[V] = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value stored at ``prefix``."""
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                child = _TrieNode()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def lookup(self, address: int) -> V | None:
        """Value of the longest prefix covering ``address``; ``None`` if none."""
        match = self.lookup_prefix(address)
        return match[1] if match is not None else None

    def lookup_prefix(self, address: int) -> tuple[Prefix, V] | None:
        """Longest matching ``(prefix, value)`` pair for ``address``."""
        if not 0 <= address <= MAX_IPV4:
            raise ValueError(f"not a 32-bit address: {address}")
        node = self._root
        best: tuple[int, V] | None = None
        if node.has_value:
            best = (0, node.value)  # type: ignore[assignment]
        for depth in range(32):
            bit = (address >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.has_value:
                best = (depth + 1, node.value)  # type: ignore[assignment]
        if best is None:
            return None
        length, value = best
        network = address & (MAX_IPV4 << (32 - length)) & MAX_IPV4 if length else 0
        return Prefix(network, length), value

    def covers(self, address: int) -> bool:
        """True if any stored prefix covers ``address``."""
        return self.lookup_prefix(address) is not None
