"""Policy routing: valley-free AS paths and router-level forwarding.

Traceroute paths in the paper cross interdomain boundaries chosen by
BGP.  We reproduce the standard Gao-Rexford model:

* an AS prefers routes learned from customers over routes learned from
  peers over routes learned from providers;
* among routes of the same class it prefers the shortest AS path, then
  the lowest next-hop ASN (a deterministic tie-break);
* routes learned from customers are exported to everyone; routes learned
  from peers or providers are exported only to customers.

The resulting paths are valley-free: zero or more customer-to-provider
steps, at most one peer step, zero or more provider-to-customer steps.

Router-level expansion then picks, for each AS transition, the concrete
interconnection (hot-potato: the border link closest to where the packet
currently is) and walks the intra-AS backbone to it, emitting the
ingress interface of every router crossed — exactly the addresses a real
traceroute would record (Section 4.3: replies come from the ingress
interface, which is why the far side of an IXP crossing shows the
IXP-LAN address).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

from .geo import haversine_km
from .links import Interconnection
from .network import InterfaceKind
from .topology import Topology

__all__ = ["RouteClass", "AsRoute", "RouteComputer", "RouterHop", "Forwarder"]


#: Route classes in preference order (lower is better).
RouteClass = int
CUSTOMER_ROUTE: RouteClass = 0
PEER_ROUTE: RouteClass = 1
PROVIDER_ROUTE: RouteClass = 2


@dataclass(frozen=True, slots=True)
class AsRoute:
    """Best route of one AS toward a destination AS."""

    route_class: RouteClass
    as_path_length: int
    next_hop: int | None  # None at the origin


class RouteComputer:
    """Per-destination valley-free routing tables with memoisation."""

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self._providers: dict[int, tuple[int, ...]] = {}
        self._customers: dict[int, tuple[int, ...]] = {}
        self._peers: dict[int, tuple[int, ...]] = {}
        for asn in topology.ases:
            self._providers[asn] = tuple(
                sorted(
                    p for p in topology.providers_of(asn)
                    if topology.links_between(asn, p)
                )
            )
        for asn in topology.ases:
            self._customers[asn] = tuple(
                sorted(
                    c
                    for c in topology.ases
                    if asn in self._providers.get(c, ())
                )
            )
        for asn in topology.ases:
            providers = set(self._providers[asn])
            customers = set(self._customers[asn])
            self._peers[asn] = tuple(
                sorted(
                    n
                    for n in topology.as_neighbors(asn)
                    if n not in providers and n not in customers
                )
            )
        self._tables: dict[int, dict[int, AsRoute]] = {}

    # ------------------------------------------------------------------

    def routes_to(self, dest_asn: int) -> dict[int, AsRoute]:
        """Best route of every AS toward ``dest_asn`` (may omit ASes with
        no valley-free route)."""
        table = self._tables.get(dest_asn)
        if table is None:
            table = self._compute(dest_asn)
            self._tables[dest_asn] = table
        return table

    def _compute(self, dest_asn: int) -> dict[int, AsRoute]:
        if dest_asn not in self._topology.ases:
            raise KeyError(f"unknown destination AS{dest_asn}")
        table: dict[int, AsRoute] = {
            dest_asn: AsRoute(CUSTOMER_ROUTE, 0, None)
        }

        # Phase 1 - customer routes: ascend provider edges from the origin.
        frontier = deque([dest_asn])
        while frontier:
            current = frontier.popleft()
            current_route = table[current]
            for provider in self._providers[current]:
                candidate = AsRoute(
                    CUSTOMER_ROUTE, current_route.as_path_length + 1, current
                )
                if self._better(candidate, table.get(provider)):
                    table[provider] = candidate
                    frontier.append(provider)

        # Phase 2 - peer routes: one lateral step from any AS holding a
        # customer route (those are the only routes exported to peers).
        customer_holders = [
            (route.as_path_length, asn)
            for asn, route in table.items()
            if route.route_class == CUSTOMER_ROUTE
        ]
        for path_length, asn in sorted(customer_holders):
            for peer in self._peers[asn]:
                candidate = AsRoute(PEER_ROUTE, path_length + 1, asn)
                if self._better(candidate, table.get(peer)):
                    table[peer] = candidate

        # Phase 3 - provider routes: descend provider->customer edges from
        # every AS that holds any route; a provider exports everything to
        # its customers.  Dijkstra on (path_length, asn) keeps the
        # shortest-then-lowest-ASN tie-break exact.
        heap: list[tuple[int, int]] = [
            (route.as_path_length, asn) for asn, route in table.items()
        ]
        heapq.heapify(heap)
        while heap:
            path_length, asn = heapq.heappop(heap)
            route = table.get(asn)
            if route is None or route.as_path_length < path_length:
                continue
            for customer in self._customers[asn]:
                candidate = AsRoute(PROVIDER_ROUTE, path_length + 1, asn)
                if self._better(candidate, table.get(customer)):
                    table[customer] = candidate
                    heapq.heappush(heap, (path_length + 1, customer))
        return table

    @staticmethod
    def _better(candidate: AsRoute, incumbent: AsRoute | None) -> bool:
        if incumbent is None:
            return True
        if candidate.route_class != incumbent.route_class:
            return candidate.route_class < incumbent.route_class
        if candidate.as_path_length != incumbent.as_path_length:
            return candidate.as_path_length < incumbent.as_path_length
        if candidate.next_hop is None or incumbent.next_hop is None:
            return False
        return candidate.next_hop < incumbent.next_hop

    def as_path(self, src_asn: int, dest_asn: int) -> list[int] | None:
        """The AS path BGP would select from ``src_asn`` to ``dest_asn``,
        inclusive of both ends; ``None`` when no valley-free route exists."""
        if src_asn == dest_asn:
            return [src_asn]
        table = self.routes_to(dest_asn)
        if src_asn not in table:
            return None
        path = [src_asn]
        current = src_asn
        while current != dest_asn:
            next_hop = table[current].next_hop
            if next_hop is None or next_hop in path:
                return None  # pragma: no cover - defensive
            path.append(next_hop)
            current = next_hop
        return path


@dataclass(frozen=True, slots=True)
class RouterHop:
    """One router crossed on a forwarding path.

    ``ingress_address`` is the interface facing the previous hop — what a
    TTL-expired reply would be sourced from.  It is ``None`` only for the
    source router itself.
    """

    router_id: int
    ingress_address: int | None
    ingress_kind: InterfaceKind | None
    link_id: int | None


class Forwarder:
    """Expands AS paths into concrete router paths over the topology."""

    def __init__(self, topology: Topology, routes: RouteComputer | None = None) -> None:
        self._topology = topology
        self._routes = routes or RouteComputer(topology)
        # Backbone adjacency (sorted for determinism) per router.
        self._backbone: dict[int, list] = {}
        for router_id in topology.routers:
            neighbors = [
                adj
                for adj in topology.adjacencies(router_id)
                if not adj.is_interconnection
            ]
            neighbors.sort(key=lambda adj: adj.neighbor_router)
            self._backbone[router_id] = neighbors
        self._intra_cache: dict[tuple[int, int], list[RouterHop] | None] = {}
        self._distance_cache: dict[tuple[int, int], float] = {}

    @property
    def routes(self) -> RouteComputer:
        """The AS-level route computer in use."""
        return self._routes

    # ------------------------------------------------------------------

    def router_path(
        self, src_router: int, dest_address: int, flow_id: int = 0
    ) -> list[RouterHop] | None:
        """Forwarding path from ``src_router`` to ``dest_address``.

        Returns the ordered routers crossed, starting with the source
        (``ingress_address`` of the source is ``None``) and ending with
        the router owning ``dest_address``.  ``None`` when the
        destination is unknown or unroutable.

        ``flow_id`` models the transport header fields ECMP hashes on:
        equal-cost intra-AS paths are tie-broken per flow, so probes
        with identical flow ids follow one consistent path (Paris
        traceroute) while varying flow ids can zig-zag across parallel
        paths (the classic-traceroute artifact of Augustin et al.).
        """
        interface = self._topology.interfaces.get(dest_address)
        if interface is None:
            return None
        dest_router = self._topology.routers[interface.router_id]
        src = self._topology.routers[src_router]
        as_path = self._routes.as_path(src.asn, dest_router.asn)
        if as_path is None:
            return None

        path: list[RouterHop] = [RouterHop(src_router, None, None, None)]
        current_router = src_router
        for position in range(len(as_path) - 1):
            this_asn = as_path[position]
            next_asn = as_path[position + 1]
            link = self._select_border_link(current_router, this_asn, next_asn)
            if link is None:
                return None  # pragma: no cover - link always exists
            egress_router, _ = link.side_of(this_asn)
            ingress_router, _ = link.side_of(next_asn)
            intra = self._intra_as_path(current_router, egress_router, flow_id)
            if intra is None:
                return None  # pragma: no cover - backbone is connected
            path.extend(intra)
            path.append(self._crossing_hop(link, this_asn, next_asn))
            current_router = ingress_router
        intra = self._intra_as_path(current_router, dest_router.router_id, flow_id)
        if intra is None:
            return None  # pragma: no cover - backbone is connected
        path.extend(intra)
        return path

    # ------------------------------------------------------------------

    def _select_border_link(
        self, current_router: int, this_asn: int, next_asn: int
    ) -> Interconnection | None:
        """Hot-potato selection among parallel interconnections: leave the
        network at the border router geographically closest to the packet."""
        links = self._topology.links_between(this_asn, next_asn)
        if not links:
            return None

        def cost(link: Interconnection) -> tuple[float, int]:
            egress_router, _ = link.side_of(this_asn)
            return (self._router_distance(current_router, egress_router), link.link_id)

        return min(links, key=cost)

    def _router_distance(self, a: int, b: int) -> float:
        """Cached great-circle distance between two routers."""
        key = (a, b) if a < b else (b, a)
        distance = self._distance_cache.get(key)
        if distance is None:
            distance = haversine_km(
                self._topology.router_location(a),
                self._topology.router_location(b),
            )
            self._distance_cache[key] = distance
        return distance

    def _crossing_hop(
        self, link: Interconnection, this_asn: int, next_asn: int
    ) -> RouterHop:
        """The hop recorded when crossing an interconnection: the next
        AS's border router answers from its link-facing interface."""
        ingress_router, _ = link.side_of(next_asn)
        for adjacency in self._topology.adjacencies(ingress_router):
            if adjacency.is_interconnection and adjacency.link_id == link.link_id:
                # Adjacencies are directed out of ingress_router; its own
                # address on the link is the egress_address field.
                return RouterHop(
                    ingress_router,
                    adjacency.egress_address,
                    adjacency.kind,
                    link.link_id,
                )
        raise LookupError(
            f"router {ingress_router} lacks an interface on link {link.link_id}"
        )  # pragma: no cover - construction guarantees the interface

    def _intra_as_path(
        self, src_router: int, dest_router: int, flow_id: int = 0
    ) -> list[RouterHop] | None:
        """Shortest backbone path (excluding ``src_router``, including
        ``dest_router``); hops carry backbone ingress interfaces.

        When several shortest paths exist (backbone chords), the ECMP
        tie-break hashes ``flow_id`` with the router id, exactly like a
        per-flow hardware hash: stable for one flow, divergent across
        flows.
        """
        if src_router == dest_router:
            return []
        cache_key = (src_router, dest_router, flow_id)
        if cache_key in self._intra_cache:
            cached = self._intra_cache[cache_key]
            return list(cached) if cached is not None else None
        # BFS recording *all* minimal-distance predecessors.
        distance = {src_router: 0}
        predecessors: dict[int, list] = {}
        frontier = deque([src_router])
        while frontier:
            current = frontier.popleft()
            if current == dest_router:
                continue
            for adjacency in self._backbone[current]:
                neighbor = adjacency.neighbor_router
                if neighbor not in distance:
                    distance[neighbor] = distance[current] + 1
                    predecessors[neighbor] = [(current, adjacency)]
                    frontier.append(neighbor)
                elif distance[neighbor] == distance[current] + 1:
                    predecessors[neighbor].append((current, adjacency))
        if dest_router not in distance:
            self._intra_cache[cache_key] = None
            return None
        hops: list[RouterHop] = []
        cursor = dest_router
        while cursor != src_router:
            choices = predecessors[cursor]
            parent, adjacency = choices[
                hash((flow_id, cursor)) % len(choices)
            ]
            hops.append(
                RouterHop(
                    cursor,
                    adjacency.ingress_address,
                    adjacency.kind,
                    adjacency.link_id,
                )
            )
            cursor = parent
        hops.reverse()
        self._intra_cache[cache_key] = list(hops)
        return hops
