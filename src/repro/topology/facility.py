"""Interconnection facilities and their operators.

An interconnection facility (Section 2) is a building that leases secure
space for network equipment and provides the cross-connect plant between
tenants.  Operators such as Equinix, Telehouse and Interxion run many
facilities; a metro-scale operator may interconnect its facilities so
that tenants of one building can cross-connect to tenants of another
("connected campuses"), which matters for Step 2 of Constrained Facility
Search: a private cross-connect constrains the two routers to the *same
facility or connected facilities of the same operator*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .geo import GeoLocation

__all__ = ["FacilityOperator", "Facility"]


@dataclass(slots=True)
class FacilityOperator:
    """A colocation company operating one or more facilities.

    Attributes:
        operator_id: dense integer id.
        name: company name (e.g. the generated analogue of "Equinix").
        facility_ids: facilities run by this operator.
        connected_metros: metros where this operator interconnects its
            own facilities into a campus, enabling cross-connects between
            buildings.
    """

    operator_id: int
    name: str
    facility_ids: set[int] = field(default_factory=set)
    connected_metros: set[str] = field(default_factory=set)

    def connects_campus_in(self, metro: str) -> bool:
        """True if the operator's facilities in ``metro`` form a campus."""
        return metro in self.connected_metros


@dataclass(slots=True)
class Facility:
    """One interconnection facility (a building).

    Attributes:
        facility_id: dense integer id.
        name: marketing name, e.g. ``"Equinor FR3"``; also the token that
            operator DNS schemes embed into hostnames.
        operator_id: owning :class:`FacilityOperator`.
        metro: canonical metro name (resolved via the metro catalogue).
        country: ISO alpha-2 country code (denormalised for datasets).
        region: continental region (denormalised for Figure 10 cuts).
        location: street-level coordinates (jittered within the metro).
        ixp_ids: IXPs with an access switch deployed in this building.
        dns_code: short code operators embed in hostnames for this
            building (e.g. ``"thn"`` for Telehouse North, Section 6).
    """

    facility_id: int
    name: str
    operator_id: int
    metro: str
    country: str
    region: str
    location: GeoLocation
    ixp_ids: set[int] = field(default_factory=set)
    dns_code: str = ""

    def __post_init__(self) -> None:
        if not self.dns_code:
            # Derive a stable, readable, *unique* code from the name:
            # operator fragment plus the facility id (real codes like
            # "thn" are per-building, never shared across a campus).
            compact = "".join(ch for ch in self.name.lower() if ch.isalnum())
            self.dns_code = f"{compact[:4] or 'fac'}{self.facility_id}"

    def hosts_ixp(self, ixp_id: int) -> bool:
        """True if the IXP has an access switch in this building."""
        return ixp_id in self.ixp_ids
