"""Temporal churn: a seeded, deterministic event plan over the topology.

The ground-truth topology is built once and frozen (``finalize`` runs
exactly once), so churn never mutates the :class:`~.topology.Topology`
object.  Instead a :func:`plan_churn` pass draws epoch-stamped
:class:`ChurnEvent`\\ s from seeded streams and materialises, per epoch,
a pure :class:`ChurnView` — the *overlay* that says which routers are
dark, which interconnection links are down, and what the facility
database believes (PeeringDB lags reality by ``pdb_lag`` epochs).  The
event log on the :class:`ChurnPlan` is the scoring ground truth for
disruption detection.

Event kinds:

* ``link-flap`` — one interconnection link drops for ``duration``
  epochs; traces crossing that router pair are truncated.
* ``facility-power-loss`` — every router installed in the facility
  goes dark; traces die at the facility boundary.
* ``as-leave`` — an AS decommissions its presence at one facility
  (routers dark for the rest of the horizon); the facility database
  keeps listing the AS there until ``db_epoch``.
* ``as-enter`` — the facility database gains an (AS, facility) listing
  at ``db_epoch``.  The frozen topology cannot grow routers, so this
  event perturbs only the constraint database — a spurious candidate
  facility, exactly the stale-PeeringDB confusion the paper's Step 2
  must narrow through.

Everything is derived from named seeded streams (``churn:<seed>:<class>``,
the same string-seeding discipline as ``exec.substream`` — this unit
sits below ``exec`` in the layering DAG so it derives the streams
directly) and is reproducible bit-for-bit from ``(topology, epochs,
config, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as _replace
from random import Random
from typing import Any, Iterable, Mapping, Sequence

from ..sanitize import tag_rng
from .topology import Topology

__all__ = [
    "AS_ENTER",
    "AS_LEAVE",
    "CHURN_EVENT_KINDS",
    "ChurnConfig",
    "ChurnEvent",
    "ChurnPlan",
    "ChurnView",
    "FACILITY_POWER_LOSS",
    "LINK_FLAP",
    "apply_events",
    "censor_trace",
    "plan_churn",
]

LINK_FLAP = "link-flap"
FACILITY_POWER_LOSS = "facility-power-loss"
AS_LEAVE = "as-leave"
AS_ENTER = "as-enter"

#: Closed set of event kinds; :class:`ChurnEvent` validates against it.
CHURN_EVENT_KINDS = (LINK_FLAP, FACILITY_POWER_LOSS, AS_LEAVE, AS_ENTER)

#: Event kinds that darken routers at a facility — the ones a
#: facility-localised disruption detector is scored against.
DISRUPTION_KINDS = (FACILITY_POWER_LOSS, AS_LEAVE)


@dataclass(frozen=True, slots=True)
class ChurnEvent:
    """One epoch-stamped change to the world (or to the database).

    Attributes:
        kind: one of :data:`CHURN_EVENT_KINDS`.
        epoch: the epoch reality changes (events take effect at the
            *start* of their epoch, before that epoch's campaign runs).
        duration: how many epochs the condition lasts.
        facility_id: the facility involved (power loss, AS moves).
        link_id: the flapping interconnection (link flaps only).
        asn: the AS involved (AS enters/leaves).
        db_epoch: when the facility database learns about it — lagged
            behind ``epoch`` for AS moves, ``None`` for events the
            database never records (flaps, power loss).
    """

    kind: str
    epoch: int
    duration: int
    facility_id: int | None = None
    link_id: int | None = None
    asn: int | None = None
    db_epoch: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in CHURN_EVENT_KINDS:
            raise ValueError(f"unknown churn event kind {self.kind!r}")
        if self.epoch < 0 or self.duration < 1:
            raise ValueError("churn events need epoch >= 0, duration >= 1")

    def active_at(self, epoch: int) -> bool:
        """Whether reality is still perturbed by this event at ``epoch``."""
        return self.epoch <= epoch < self.epoch + self.duration

    def db_active_at(self, epoch: int) -> bool:
        """Whether the database has absorbed this event at ``epoch``."""
        return self.db_epoch is not None and epoch >= self.db_epoch

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "epoch": self.epoch,
            "duration": self.duration,
            "facility_id": self.facility_id,
            "link_id": self.link_id,
            "asn": self.asn,
            "db_epoch": self.db_epoch,
        }


@dataclass(frozen=True, slots=True)
class ChurnConfig:
    """Per-epoch event probabilities and lag/duration knobs.

    Rates are per-epoch Bernoulli probabilities (at most one event of
    each class is drawn per epoch — churn stays sparse by design, so
    detection latency is attributable to a specific event).  The
    ``moderate()``/``scaled()``/``zero()`` surface mirrors
    ``FaultPlan`` so sweeps compose the two axes symmetrically.
    """

    link_flap_rate: float = 0.0
    facility_outage_rate: float = 0.0
    as_leave_rate: float = 0.0
    as_enter_rate: float = 0.0
    pdb_lag: int = 2
    outage_duration: int = 2
    flap_duration: int = 1
    warmup_epochs: int = 2
    min_facility_links: int = 3

    def __post_init__(self) -> None:
        for name in (
            "link_flap_rate",
            "facility_outage_rate",
            "as_leave_rate",
            "as_enter_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.pdb_lag < 0:
            raise ValueError("pdb_lag must be >= 0")
        if self.outage_duration < 1 or self.flap_duration < 1:
            raise ValueError("durations must be >= 1")
        if self.warmup_epochs < 0:
            raise ValueError("warmup_epochs must be >= 0")
        if self.min_facility_links < 1:
            raise ValueError("min_facility_links must be >= 1")

    @classmethod
    def zero(cls) -> "ChurnConfig":
        """No events at all — the world stands still."""
        return cls()

    @classmethod
    def moderate(cls) -> "ChurnConfig":
        """The reference churn profile used by benchmarks and gates.

        ``min_facility_links`` is raised above the default because the
        inferred map resolves only a fraction of the ground-truth
        endpoints at a facility: a power loss at a facility with a
        handful of links is invisible to any detector reading the map,
        and drawing it would score the topology's sparsity, not the
        detector.
        """
        return cls(
            link_flap_rate=0.25,
            facility_outage_rate=0.40,
            as_leave_rate=0.15,
            as_enter_rate=0.15,
            min_facility_links=10,
        )

    def scaled(self, intensity: float) -> "ChurnConfig":
        """Scale every rate by ``intensity``, clamped to [0, 1]."""
        if intensity < 0:
            raise ValueError("intensity must be >= 0")

        def clamp(value: float) -> float:
            return min(1.0, value * intensity)

        return _replace(
            self,
            link_flap_rate=clamp(self.link_flap_rate),
            facility_outage_rate=clamp(self.facility_outage_rate),
            as_leave_rate=clamp(self.as_leave_rate),
            as_enter_rate=clamp(self.as_enter_rate),
        )

    def replace(self, **overrides: Any) -> "ChurnConfig":
        return _replace(self, **overrides)

    @property
    def is_zero(self) -> bool:
        return (
            self.link_flap_rate == 0
            and self.facility_outage_rate == 0
            and self.as_leave_rate == 0
            and self.as_enter_rate == 0
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "link_flap_rate": self.link_flap_rate,
            "facility_outage_rate": self.facility_outage_rate,
            "as_leave_rate": self.as_leave_rate,
            "as_enter_rate": self.as_enter_rate,
            "pdb_lag": self.pdb_lag,
            "outage_duration": self.outage_duration,
            "flap_duration": self.flap_duration,
            "warmup_epochs": self.warmup_epochs,
            "min_facility_links": self.min_facility_links,
        }


@dataclass(frozen=True, slots=True)
class ChurnView:
    """The world as seen at one epoch — a pure overlay, never a mutation.

    Attributes:
        epoch: the epoch this view describes.
        dark_routers: router ids that answer nothing this epoch.
        down_pairs: normalised ``(min, max)`` router-id pairs whose
            interconnection link is down (flaps).
        db_hidden: ``(asn, facility_id)`` listings the database has
            *dropped* by this epoch (lagged AS departures).
        db_added: ``(asn, facility_id)`` listings the database has
            *gained* by this epoch (lagged AS arrivals).
        started: events whose effect begins exactly this epoch.
        active: events still perturbing reality this epoch.
    """

    epoch: int
    dark_routers: frozenset[int] = frozenset()
    down_pairs: frozenset[tuple[int, int]] = frozenset()
    db_hidden: frozenset[tuple[int, int]] = frozenset()
    db_added: frozenset[tuple[int, int]] = frozenset()
    started: tuple[ChurnEvent, ...] = ()
    active: tuple[ChurnEvent, ...] = ()

    @property
    def is_quiet(self) -> bool:
        """True when measurement reality is unperturbed this epoch."""
        return not self.dark_routers and not self.down_pairs

    @property
    def db_key(self) -> tuple[frozenset[tuple[int, int]], frozenset[tuple[int, int]]]:
        """Cache key for the lagged facility-database overlay."""
        return (self.db_hidden, self.db_added)


def apply_events(
    topology: Topology, events: Sequence[ChurnEvent], epoch: int
) -> ChurnView:
    """The pure epoch transition: fold ``events`` into a :class:`ChurnView`.

    Reads the topology, mutates nothing; calling it twice with the same
    arguments yields equal views.  ``plan_churn`` precomputes one view
    per epoch via this function, but it is equally usable on a
    hand-written event list.
    """
    dark: set[int] = set()
    down: set[tuple[int, int]] = set()
    hidden: set[tuple[int, int]] = set()
    added: set[tuple[int, int]] = set()
    started: list[ChurnEvent] = []
    active: list[ChurnEvent] = []
    for event in events:
        if event.epoch == epoch:
            started.append(event)
        if event.active_at(epoch):
            active.append(event)
            if event.kind == FACILITY_POWER_LOSS:
                for router in topology.routers.values():
                    if router.facility_id == event.facility_id:
                        dark.add(router.router_id)
            elif event.kind == AS_LEAVE:
                for router in topology.routers.values():
                    if (
                        router.asn == event.asn
                        and router.facility_id == event.facility_id
                    ):
                        dark.add(router.router_id)
            elif event.kind == LINK_FLAP and event.link_id is not None:
                link = topology.interconnections.get(event.link_id)
                if link is not None:
                    pair = (link.router_a, link.router_b)
                    down.add((min(pair), max(pair)))
        if event.db_active_at(epoch):
            if event.kind == AS_LEAVE:
                hidden.add((event.asn, event.facility_id))
            elif event.kind == AS_ENTER:
                added.add((event.asn, event.facility_id))
    return ChurnView(
        epoch=epoch,
        dark_routers=frozenset(dark),
        down_pairs=frozenset(down),
        db_hidden=frozenset(hidden),
        db_added=frozenset(added),
        started=tuple(started),
        active=tuple(active),
    )


@dataclass(frozen=True, slots=True)
class ChurnPlan:
    """The full seeded event log plus one precomputed view per epoch."""

    seed: int
    epochs: int
    config: ChurnConfig
    events: tuple[ChurnEvent, ...]
    views: tuple[ChurnView, ...] = field(repr=False)

    def view(self, epoch: int) -> ChurnView:
        if not 0 <= epoch < self.epochs:
            raise ValueError(f"epoch {epoch} outside plan horizon {self.epochs}")
        return self.views[epoch]

    def disruption_events(self) -> tuple[ChurnEvent, ...]:
        """Events that darken routers at a facility (detector targets)."""
        return tuple(e for e in self.events if e.kind in DISRUPTION_KINDS)

    def power_loss_events(self) -> tuple[ChurnEvent, ...]:
        return tuple(e for e in self.events if e.kind == FACILITY_POWER_LOSS)

    @property
    def is_quiet(self) -> bool:
        return all(view.is_quiet and not view.started for view in self.views)

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "epochs": self.epochs,
            "config": self.config.as_dict(),
            "events": [event.as_dict() for event in self.events],
        }


def _facility_endpoint_counts(topology: Topology) -> dict[int, int]:
    """Interconnection endpoints pinned per facility, from ground truth."""
    counts: dict[int, int] = {}
    for link in topology.interconnections.values():
        for facility in (link.facility_a, link.facility_b):
            if facility is not None:
                counts[facility] = counts.get(facility, 0) + 1
    return counts


def plan_churn(
    topology: Topology,
    epochs: int,
    config: ChurnConfig,
    seed: int,
    candidate_facilities: Iterable[int] | None = None,
) -> ChurnPlan:
    """Draw a deterministic :class:`ChurnPlan` over ``epochs`` epochs.

    Each event class owns a named seeded stream (``churn:<seed>:flap``
    and friends), so adding one class never re-times another.  Facility
    power loss targets only facilities hosting at least
    ``config.min_facility_links`` interconnection endpoints (below that
    a loss is statistically invisible to the detector and would just
    poison recall scoring); AS departures target (AS, facility) pairs
    where the AS is present in at least two facilities, so the AS stays
    measurable elsewhere.  No events fire during the first
    ``config.warmup_epochs`` epochs — the detector needs a baseline
    before anything moves.
    """
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    flap_rng = tag_rng(Random(f"churn:{seed}:flap"), "churn", seed, "flap")
    outage_rng = tag_rng(Random(f"churn:{seed}:outage"), "churn", seed, "outage")
    leave_rng = tag_rng(Random(f"churn:{seed}:leave"), "churn", seed, "leave")
    enter_rng = tag_rng(Random(f"churn:{seed}:enter"), "churn", seed, "enter")

    counts = _facility_endpoint_counts(topology)
    if candidate_facilities is None:
        outage_candidates = sorted(
            facility
            for facility, count in counts.items()
            if count >= config.min_facility_links
        )
    else:
        outage_candidates = sorted(set(candidate_facilities))

    facilities_by_asn: dict[int, set[int]] = {}
    for router in topology.routers.values():
        facilities_by_asn.setdefault(router.asn, set()).add(router.facility_id)
    leave_candidates = sorted(
        (asn, facility)
        for asn, facilities in facilities_by_asn.items()
        if len(facilities) >= 2
        for facility in facilities
    )
    all_facilities = sorted(counts)
    enter_candidates = sorted(
        (asn, facility)
        for asn, facilities in facilities_by_asn.items()
        for facility in all_facilities
        if facility not in facilities
    )
    link_ids = sorted(topology.interconnections)

    events: list[ChurnEvent] = []
    facility_down_until: dict[int, int] = {}
    departed: set[tuple[int, int]] = set()
    entered: set[tuple[int, int]] = set()
    for epoch in range(epochs):
        if epoch < config.warmup_epochs:
            # Streams still advance on quiet epochs so a rate change in
            # one class never re-times the others.
            flap_rng.random()
            outage_rng.random()
            leave_rng.random()
            enter_rng.random()
            continue
        if flap_rng.random() < config.link_flap_rate and link_ids:
            link_id = link_ids[flap_rng.randrange(len(link_ids))]
            events.append(
                ChurnEvent(
                    kind=LINK_FLAP,
                    epoch=epoch,
                    duration=config.flap_duration,
                    link_id=link_id,
                )
            )
        if (
            outage_rng.random() < config.facility_outage_rate
            and epoch + config.outage_duration <= epochs
        ):
            # A power loss is only drawn when its whole window fits the
            # horizon: an outage starting on the final epoch gives any
            # debounced detector exactly one observation, so scoring it
            # as "missed" would measure the horizon, not the detector.
            up = [
                facility
                for facility in outage_candidates
                if facility_down_until.get(facility, -1) < epoch
            ]
            if up:
                facility = up[outage_rng.randrange(len(up))]
                facility_down_until[facility] = epoch + config.outage_duration - 1
                events.append(
                    ChurnEvent(
                        kind=FACILITY_POWER_LOSS,
                        epoch=epoch,
                        duration=config.outage_duration,
                        facility_id=facility,
                    )
                )
        if leave_rng.random() < config.as_leave_rate:
            available = [pair for pair in leave_candidates if pair not in departed]
            if available:
                asn, facility = available[leave_rng.randrange(len(available))]
                departed.add((asn, facility))
                events.append(
                    ChurnEvent(
                        kind=AS_LEAVE,
                        epoch=epoch,
                        duration=epochs - epoch,
                        facility_id=facility,
                        asn=asn,
                        db_epoch=epoch + config.pdb_lag,
                    )
                )
        if enter_rng.random() < config.as_enter_rate:
            available = [pair for pair in enter_candidates if pair not in entered]
            if available:
                asn, facility = available[enter_rng.randrange(len(available))]
                entered.add((asn, facility))
                events.append(
                    ChurnEvent(
                        kind=AS_ENTER,
                        epoch=epoch,
                        duration=epochs - epoch,
                        facility_id=facility,
                        asn=asn,
                        db_epoch=epoch + config.pdb_lag,
                    )
                )
    event_log = tuple(events)
    views = tuple(apply_events(topology, event_log, epoch) for epoch in range(epochs))
    return ChurnPlan(
        seed=seed, epochs=epochs, config=config, events=event_log, views=views
    )


def censor_trace(trace: Any, view: ChurnView) -> Any:
    """Truncate a traceroute at the first hop the churned world absorbs.

    Duck-typed over any frozen trace with ``hops`` (each hop carrying
    the ground-truth ``router_id``) and a ``reached`` flag — the same
    shape the fault injector's truncation uses, so the measurement
    layer needs no import from here.  A hop is absorbed when its router
    is dark, or when the (previous hop, hop) pair crosses a flapped
    link.  The link between the vantage point's own first router and
    the first *recorded* hop is not visible in the hop list, so a flap
    there passes uncensored — documented blind spot, matching real
    traceroute semantics where the probe's first egress is implicit.
    """
    if view.is_quiet or not trace.hops:
        return trace
    previous: int | None = None
    for index, hop in enumerate(trace.hops):
        router_id = hop.router_id
        if router_id in view.dark_routers:
            return _truncated(trace, index)
        if previous is not None:
            pair = (min(previous, router_id), max(previous, router_id))
            if pair in view.down_pairs:
                return _truncated(trace, index)
        previous = router_id
    return trace


def _truncated(trace: Any, index: int) -> Any:
    return _replace(trace, hops=trace.hops[:index], reached=False)


def lagged_membership(
    as_facilities: Mapping[int, frozenset[int]], view: ChurnView
) -> dict[int, frozenset[int]]:
    """Apply the view's database lag to an AS→facilities membership map.

    Returns a plain dict copy with departures still listed (until
    ``db_epoch`` passes, when they move into ``db_hidden``) and lagged
    arrivals added.  The caller wraps this into whatever database
    object its layer uses — this module stays below the core layer.
    """
    membership = dict(as_facilities)
    for asn, facility in sorted(view.db_hidden):
        present = membership.get(asn)
        if present is not None and facility in present:
            membership[asn] = present - {facility}
    for asn, facility in sorted(view.db_added):
        membership[asn] = membership.get(asn, frozenset()) | {facility}
    return membership
