"""Routers and interfaces: the device layer of the generated Internet.

Traceroute observes *interfaces*, not routers; the whole point of alias
resolution (Section 4.1) is to regroup interfaces into routers so that
facility constraints discovered for one interface transfer to its
aliases (CFS Step 3).  We therefore keep the ground-truth
interface-to-router binding explicit and let the measurement layer look
at it only through probing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .addressing import int_to_ip

__all__ = ["InterfaceKind", "Interface", "Router"]


class InterfaceKind(enum.Enum):
    """What a router interface attaches to."""

    #: Intra-AS backbone link between two routers of the same AS.
    BACKBONE = "backbone"
    #: Port on an IXP peering LAN (address owned by the IXP).
    IXP_LAN = "ixp-lan"
    #: Private point-to-point interconnect (cross-connect, tethering, or
    #: remote private peering); the /31 is drawn from one of the two
    #: peers' address space, which is what makes longest-prefix IP-to-AS
    #: mapping unreliable on these links (Section 4.1).
    PRIVATE_P2P = "private-p2p"
    #: Loopback / management address used as a stable router identifier.
    LOOPBACK = "loopback"
    #: Server/host address on a LAN behind the router (the kind of
    #: address the paper's campaigns actually target: content servers,
    #: hitlist-responsive hosts).  Probes toward it traverse the router
    #: — whose ingress interface stays visible — before the host echoes.
    HOST = "host"


@dataclass(frozen=True, slots=True)
class Interface:
    """One addressed interface.

    Attributes:
        address: IPv4 address as an integer.
        router_id: ground-truth owning router.
        kind: attachment type.
        space_owner_asn: the AS whose address block the address was drawn
            from.  For :data:`InterfaceKind.PRIVATE_P2P` this may differ
            from the AS operating the router; for
            :data:`InterfaceKind.IXP_LAN` it is the IXP's ASN.
        ixp_id: the exchange, for IXP-LAN interfaces.
        link_id: the interconnection or backbone link the interface
            terminates, when applicable.
    """

    address: int
    router_id: int
    kind: InterfaceKind
    space_owner_asn: int
    ixp_id: int | None = None
    link_id: int | None = None

    @property
    def ip(self) -> str:
        """Dotted-quad rendering of the address."""
        return int_to_ip(self.address)


@dataclass(slots=True)
class Router:
    """One ground-truth router.

    Attributes:
        router_id: dense integer id.
        asn: operating AS.
        facility_id: the building the router is installed in — the value
            Constrained Facility Search tries to infer.
        interfaces: addresses of all interfaces on this router.
        hostname_label: short label operators embed in DNS names (e.g.
            ``"edge1"``); combined with facility/metro codes by the DNS
            naming schemes of the dataset layer.
    """

    router_id: int
    asn: int
    facility_id: int
    interfaces: list[int] = field(default_factory=list)
    hostname_label: str = ""

    def add_interface(self, address: int) -> None:
        """Attach an address to this router (idempotent)."""
        if address not in self.interfaces:
            self.interfaces.append(address)
