"""Geography substrate: metropolitan areas, distances, and propagation delay.

The paper anchors every inference to physical buildings inside
metropolitan areas (Section 3.1: facilities are grouped into a metro when
they are within 5 miles of each other, e.g. Jersey City and New York City
become the NYC metro).  This module provides:

* a catalogue of real metropolitan areas with coordinates, ISO country
  codes and regions, matching the cities that dominate the paper's
  Figure 3 (metros with at least 10 interconnection facilities);
* great-circle distance (haversine) helpers;
* a speed-of-light-in-fiber propagation-delay model used by the
  measurement substrate to synthesise traceroute RTTs, which in turn
  drive the remote-peering detection of Section 4.2 (Castro et al.).

Everything here is deterministic and has no external dependencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "GeoLocation",
    "Metro",
    "MetroCatalogue",
    "DEFAULT_METROS",
    "haversine_km",
    "km_to_miles",
    "miles_to_km",
    "propagation_delay_ms",
    "METRO_GROUPING_MILES",
]

#: Facilities closer than this are grouped into one metropolitan area
#: (Section 3.1.1 of the paper uses 5 miles).
METRO_GROUPING_MILES = 5.0

_EARTH_RADIUS_KM = 6371.0088

#: Effective signal speed in optical fiber, km per millisecond.  Light in
#: fiber travels at roughly 2/3 c ~= 200 km/ms.
_FIBER_KM_PER_MS = 200.0

#: Fiber paths are not great circles; measured paths are typically
#: inflated relative to geodesic distance.
_PATH_INFLATION = 1.6


@dataclass(frozen=True, slots=True)
class GeoLocation:
    """A point on the Earth's surface in decimal degrees."""

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude out of range: {self.longitude}")

    def distance_km(self, other: "GeoLocation") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return haversine_km(self, other)


def haversine_km(a: GeoLocation, b: GeoLocation) -> float:
    """Great-circle distance between two locations in kilometres."""
    lat1, lon1 = math.radians(a.latitude), math.radians(a.longitude)
    lat2, lon2 = math.radians(b.latitude), math.radians(b.longitude)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = (
        math.sin(dlat / 2.0) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    )
    # Clamp against floating-point drift before asin.
    h = min(1.0, max(0.0, h))
    return 2.0 * _EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def km_to_miles(km: float) -> float:
    """Convert kilometres to statute miles."""
    return km * 0.621371


def miles_to_km(miles: float) -> float:
    """Convert statute miles to kilometres."""
    return miles / 0.621371


def propagation_delay_ms(distance_km: float, inflation: float = _PATH_INFLATION) -> float:
    """One-way propagation delay over ``distance_km`` of inflated fiber path.

    ``inflation`` models the detour factor of real fiber routes relative
    to the great circle.  The return value is a one-way delay; RTT models
    double it.
    """
    if distance_km < 0:
        raise ValueError("distance must be non-negative")
    if inflation < 1.0:
        raise ValueError("path inflation factor must be >= 1")
    return distance_km * inflation / _FIBER_KM_PER_MS


@dataclass(frozen=True, slots=True)
class Metro:
    """A metropolitan interconnection market.

    Attributes:
        name: canonical metro name (e.g. ``"New York"``).
        country: ISO 3166-1 alpha-2 country code.
        region: continental region label used in the paper's Figure 10
            (``"Europe"``, ``"North America"``, ``"Asia"``, ``"Oceania"``,
            ``"South America"``, ``"Africa"``).
        location: representative coordinates of the metro core.
        aliases: alternate spellings and satellite cities that public
            databases use inconsistently and that the normalisation layer
            (Section 3.1.1) must fold into this metro, e.g. Jersey City
            for New York, Slough for London.
        market_weight: relative size of the interconnection market; the
            topology builder uses it to produce the heavy-tailed facility
            counts of Figure 3.
    """

    name: str
    country: str
    region: str
    location: GeoLocation
    aliases: tuple[str, ...] = ()
    market_weight: float = 1.0

    def __post_init__(self) -> None:
        if len(self.country) != 2 or not self.country.isupper():
            raise ValueError(f"country must be ISO alpha-2: {self.country!r}")
        if self.market_weight <= 0:
            raise ValueError("market_weight must be positive")


_REGION_NAMES = frozenset(
    {
        "North America",
        "South America",
        "Europe",
        "Asia",
        "Oceania",
        "Africa",
    }
)


def _metro(
    name: str,
    country: str,
    region: str,
    lat: float,
    lon: float,
    weight: float,
    aliases: tuple[str, ...] = (),
) -> Metro:
    if region not in _REGION_NAMES:
        raise ValueError(f"unknown region {region!r}")
    return Metro(
        name=name,
        country=country,
        region=region,
        location=GeoLocation(lat, lon),
        aliases=aliases,
        market_weight=weight,
    )


#: Catalogue of metropolitan interconnection markets.  The leading
#: entries mirror the metros of the paper's Figure 3 (cities with at
#: least 10 interconnection facilities in April 2015), with weights
#: decaying in roughly the same heavy-tailed order; the tail adds
#: further markets so that generated topologies exercise all regions.
DEFAULT_METROS: tuple[Metro, ...] = (
    _metro("London", "GB", "Europe", 51.5074, -0.1278, 45.0,
           ("London Docklands", "Slough", "Enfield")),
    _metro("New York", "US", "North America", 40.7128, -74.0060, 42.0,
           ("NYC", "Jersey City", "Secaucus", "Newark", "Weehawken")),
    _metro("Paris", "FR", "Europe", 48.8566, 2.3522, 36.0,
           ("Aubervilliers", "Saint-Denis", "Courbevoie")),
    _metro("Frankfurt", "DE", "Europe", 50.1109, 8.6821, 34.0,
           ("Frankfurt am Main", "Offenbach", "Eschborn")),
    _metro("Amsterdam", "NL", "Europe", 52.3676, 4.9041, 32.0,
           ("Haarlem", "Schiphol-Rijk", "Aalsmeer")),
    _metro("San Jose", "US", "North America", 37.3382, -121.8863, 28.0,
           ("Santa Clara", "Palo Alto", "Milpitas", "Silicon Valley")),
    _metro("Moscow", "RU", "Europe", 55.7558, 37.6173, 26.0, ("Moskva",)),
    _metro("Los Angeles", "US", "North America", 34.0522, -118.2437, 25.0,
           ("El Segundo", "One Wilshire")),
    _metro("Stockholm", "SE", "Europe", 59.3293, 18.0686, 22.0,
           ("Kista", "Bromma")),
    _metro("Manchester", "GB", "Europe", 53.4808, -2.2426, 20.0,
           ("Salford", "Trafford")),
    _metro("Miami", "US", "North America", 25.7617, -80.1918, 19.0,
           ("Boca Raton", "NAP of the Americas")),
    _metro("Berlin", "DE", "Europe", 52.5200, 13.4050, 18.0, ("Spandau",)),
    _metro("Tokyo", "JP", "Asia", 35.6762, 139.6503, 18.0,
           ("Otemachi", "Shinagawa", "Inzai")),
    _metro("Kiev", "UA", "Europe", 50.4501, 30.5234, 17.0, ("Kyiv",)),
    _metro("Sao Paulo", "BR", "South America", -23.5505, -46.6333, 16.0,
           ("São Paulo", "Barueri", "Tamboré")),
    _metro("Vienna", "AT", "Europe", 48.2082, 16.3738, 15.0, ("Wien",)),
    _metro("Singapore", "SG", "Asia", 1.3521, 103.8198, 15.0, ("Jurong",)),
    _metro("Auckland", "NZ", "Oceania", -36.8509, 174.7645, 14.0, ()),
    _metro("Hong Kong", "HK", "Asia", 22.3193, 114.1694, 14.0,
           ("Chai Wan", "Tseung Kwan O")),
    _metro("Melbourne", "AU", "Oceania", -37.8136, 144.9631, 13.0, ()),
    _metro("Montreal", "CA", "North America", 45.5017, -73.5673, 13.0,
           ("Montréal", "Laval")),
    _metro("Zurich", "CH", "Europe", 47.3769, 8.5417, 13.0,
           ("Zürich", "Glattbrugg")),
    _metro("Prague", "CZ", "Europe", 50.0755, 14.4378, 12.0, ("Praha",)),
    _metro("Seattle", "US", "North America", 47.6062, -122.3321, 12.0,
           ("Tukwila", "Westin Building")),
    _metro("Chicago", "US", "North America", 41.8781, -87.6298, 12.0,
           ("Elk Grove Village", "Cermak")),
    _metro("Dallas", "US", "North America", 32.7767, -96.7970, 11.0,
           ("Richardson", "Plano", "Fort Worth")),
    _metro("Hamburg", "DE", "Europe", 53.5511, 9.9937, 11.0, ()),
    _metro("Atlanta", "US", "North America", 33.7490, -84.3880, 11.0,
           ("Marietta", "56 Marietta")),
    _metro("Bucharest", "RO", "Europe", 44.4268, 26.1025, 11.0,
           ("Bucuresti", "București")),
    _metro("Madrid", "ES", "Europe", 40.4168, -3.7038, 10.0,
           ("Alcobendas",)),
    _metro("Milan", "IT", "Europe", 45.4642, 9.1900, 10.0,
           ("Milano", "Caldera")),
    _metro("Duesseldorf", "DE", "Europe", 51.2277, 6.7735, 10.0,
           ("Düsseldorf", "Dusseldorf", "Neuss")),
    _metro("Sofia", "BG", "Europe", 42.6977, 23.3219, 10.0, ()),
    _metro("St. Petersburg", "RU", "Europe", 59.9311, 30.3609, 10.0,
           ("Saint Petersburg", "Sankt-Peterburg")),
    # Tail markets: below the Figure 3 cut-off but present in the
    # facility dataset (1,694 facilities across 684 cities).
    _metro("Ashburn", "US", "North America", 39.0438, -77.4874, 9.0,
           ("Washington DC", "Reston", "Vienna VA")),
    _metro("Toronto", "CA", "North America", 43.6532, -79.3832, 8.0,
           ("151 Front Street",)),
    _metro("Sydney", "AU", "Oceania", -33.8688, 151.2093, 8.0,
           ("Mascot",)),
    _metro("Dublin", "IE", "Europe", 53.3498, -6.2603, 7.0,
           ("Clonshaugh",)),
    _metro("Warsaw", "PL", "Europe", 52.2297, 21.0122, 7.0,
           ("Warszawa",)),
    _metro("Brussels", "BE", "Europe", 50.8503, 4.3517, 6.0,
           ("Bruxelles", "Zaventem")),
    _metro("Copenhagen", "DK", "Europe", 55.6761, 12.5683, 6.0,
           ("Ballerup", "København")),
    _metro("Oslo", "NO", "Europe", 59.9139, 10.7522, 5.0, ()),
    _metro("Helsinki", "FI", "Europe", 60.1699, 24.9384, 5.0,
           ("Espoo",)),
    _metro("Lisbon", "PT", "Europe", 38.7223, -9.1393, 5.0,
           ("Lisboa",)),
    _metro("Rome", "IT", "Europe", 41.9028, 12.4964, 5.0, ("Roma",)),
    _metro("Seoul", "KR", "Asia", 37.5665, 126.9780, 8.0, ("Gasan",)),
    _metro("Osaka", "JP", "Asia", 34.6937, 135.5023, 6.0, ("Dojima",)),
    _metro("Mumbai", "IN", "Asia", 19.0760, 72.8777, 7.0, ("Bombay",)),
    _metro("Jakarta", "ID", "Asia", -6.2088, 106.8456, 5.0, ()),
    _metro("Dubai", "AE", "Asia", 25.2048, 55.2708, 5.0, ("Jebel Ali",)),
    _metro("Johannesburg", "ZA", "Africa", -26.2041, 28.0473, 6.0,
           ("Isando", "Sandton")),
    _metro("Nairobi", "KE", "Africa", -1.2921, 36.8219, 4.0, ()),
    _metro("Cape Town", "ZA", "Africa", -33.9249, 18.4241, 4.0, ()),
    _metro("Buenos Aires", "AR", "South America", -34.6037, -58.3816, 6.0,
           ()),
    _metro("Santiago", "CL", "South America", -33.4489, -70.6693, 4.0,
           ()),
    _metro("Mexico City", "MX", "North America", 19.4326, -99.1332, 5.0,
           ("Ciudad de Mexico", "Querétaro")),
    _metro("Denver", "US", "North America", 39.7392, -104.9903, 5.0, ()),
    _metro("Phoenix", "US", "North America", 33.4484, -112.0740, 4.0,
           ("Chandler",)),
)


class MetroCatalogue:
    """Indexed access to a set of metros with alias-aware lookup.

    The catalogue is the single source of truth for geography in a
    generated topology.  Lookup accepts canonical names, aliases, and is
    case- and diacritic-insensitive in the limited sense needed by the
    dataset-normalisation layer (exact casefolded match).
    """

    def __init__(self, metros: tuple[Metro, ...] = DEFAULT_METROS) -> None:
        if not metros:
            raise ValueError("catalogue requires at least one metro")
        self._metros: tuple[Metro, ...] = tuple(metros)
        self._by_name: dict[str, Metro] = {}
        for metro in self._metros:
            for key in (metro.name, *metro.aliases):
                folded = key.casefold()
                existing = self._by_name.get(folded)
                if existing is not None:
                    raise ValueError(
                        f"name {key!r} maps to both {existing.name!r} "
                        f"and {metro.name!r}"
                    )
                self._by_name[folded] = metro

    def __len__(self) -> int:
        return len(self._metros)

    def __iter__(self):
        return iter(self._metros)

    @property
    def metros(self) -> tuple[Metro, ...]:
        """All catalogued metros, in definition order."""
        return self._metros

    def get(self, name: str) -> Metro | None:
        """Find a metro by canonical name or alias; ``None`` if unknown."""
        return self._by_name.get(name.casefold())

    def resolve(self, name: str) -> Metro:
        """Find a metro by canonical name or alias; raise if unknown."""
        metro = self.get(name)
        if metro is None:
            raise KeyError(f"unknown metro {name!r}")
        return metro

    def in_region(self, region: str) -> tuple[Metro, ...]:
        """All metros in a continental region."""
        return tuple(m for m in self._metros if m.region == region)

    def in_country(self, country: str) -> tuple[Metro, ...]:
        """All metros in an ISO alpha-2 country."""
        return tuple(m for m in self._metros if m.country == country)

    def nearest(self, location: GeoLocation) -> Metro:
        """The metro whose core is closest to ``location``."""
        return min(
            self._metros,
            key=lambda m: haversine_km(m.location, location),
        )

    def distance_km(self, a: str, b: str) -> float:
        """Great-circle distance between two metros by name."""
        return haversine_km(self.resolve(a).location, self.resolve(b).location)
