"""Interconnections: the four peering engineering options plus transit.

Section 2 of the paper enumerates the technical approaches to
interconnection whose identification is half of the CFS output:

* **public peering** over the IXP fabric (bilateral, or multilateral via
  the route server), with the member's router in a partner facility;
* **remote peering**, the same fabric reached through a reseller, with
  the member's router in a facility unrelated to the exchange;
* **private peering via cross-connect**, a dedicated circuit inside one
  facility (or between campus facilities of one operator);
* **tethering**, a private VLAN over the IXP fabric between members
  whose routers may sit in different partner facilities.

Transit interconnections are physically one of the above (most commonly
a cross-connect); they carry a customer-provider business relationship
that routing policy needs, so the relationship is annotated separately
from the engineering type.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .addressing import Prefix

__all__ = [
    "InterconnectionType",
    "Relationship",
    "Interconnection",
    "BackboneLink",
]


class InterconnectionType(enum.Enum):
    """Engineering approach of an interconnection."""

    PUBLIC_PEERING = "public-peering"
    REMOTE_PEERING = "remote-peering"
    PRIVATE_CROSS_CONNECT = "cross-connect"
    TETHERING = "tethering"

    @property
    def is_private(self) -> bool:
        """True for interconnections that traceroute sees as a direct
        AS-to-AS hop sequence (no IXP-LAN address in between)."""
        return self in (
            InterconnectionType.PRIVATE_CROSS_CONNECT,
            InterconnectionType.TETHERING,
        )

    @property
    def uses_ixp_fabric(self) -> bool:
        """True if traffic traverses the exchange's switching fabric."""
        return self is not InterconnectionType.PRIVATE_CROSS_CONNECT


class Relationship(enum.Enum):
    """Gao-Rexford business relationship of an interconnection."""

    #: ``asn_a`` buys transit from ``asn_b``.
    CUSTOMER_PROVIDER = "c2p"
    #: Settlement-free peering.
    PEER_PEER = "p2p"


@dataclass(frozen=True, slots=True)
class Interconnection:
    """Ground truth for one AS-AS interconnection.

    Attributes:
        link_id: dense integer id.
        kind: engineering approach.
        relationship: business relationship (``asn_a`` side first).
        asn_a / asn_b: the two networks.
        router_a / router_b: ground-truth border routers.
        facility_a / facility_b: ground-truth facilities of those
            routers.  Equal for cross-connects within one building; they
            may differ for campus cross-connects, tethering, and always
            tell the real story for remote peering.
        ixp_id: the exchange whose fabric carries the traffic, for every
            kind except plain cross-connects.
        p2p_prefix: the /31 used on a private interconnect, drawn from
            ``p2p_owner_asn``'s space.
        via_route_server: multilateral public peering (route server).
    """

    link_id: int
    kind: InterconnectionType
    relationship: Relationship
    asn_a: int
    asn_b: int
    router_a: int
    router_b: int
    facility_a: int
    facility_b: int
    ixp_id: int | None = None
    p2p_prefix: Prefix | None = None
    p2p_owner_asn: int | None = None
    via_route_server: bool = False

    def __post_init__(self) -> None:
        if self.asn_a == self.asn_b:
            raise ValueError("interconnection must join two distinct ASes")
        if self.kind.uses_ixp_fabric and self.ixp_id is None:
            raise ValueError(f"{self.kind.value} requires an ixp_id")
        if self.kind is InterconnectionType.PRIVATE_CROSS_CONNECT and self.ixp_id is not None:
            raise ValueError("a cross-connect does not traverse an IXP")
        if self.kind.is_private and self.p2p_prefix is None:
            raise ValueError(f"{self.kind.value} requires a p2p prefix")

    def involves(self, asn: int) -> bool:
        """True if ``asn`` is one of the two endpoints."""
        return asn in (self.asn_a, self.asn_b)

    def peer_of(self, asn: int) -> int:
        """The other endpoint's ASN."""
        if asn == self.asn_a:
            return self.asn_b
        if asn == self.asn_b:
            return self.asn_a
        raise ValueError(f"AS{asn} is not an endpoint of link {self.link_id}")

    def side_of(self, asn: int) -> tuple[int, int]:
        """``(router_id, facility_id)`` of ``asn``'s side of the link."""
        if asn == self.asn_a:
            return self.router_a, self.facility_a
        if asn == self.asn_b:
            return self.router_b, self.facility_b
        raise ValueError(f"AS{asn} is not an endpoint of link {self.link_id}")


@dataclass(frozen=True, slots=True)
class BackboneLink:
    """Intra-AS backbone adjacency between two routers of one AS."""

    link_id: int
    asn: int
    router_a: int
    router_b: int
    prefix: Prefix

    def other_end(self, router_id: int) -> int:
        """The router at the far end of the adjacency."""
        if router_id == self.router_a:
            return self.router_b
        if router_id == self.router_b:
            return self.router_a
        raise ValueError(f"router {router_id} not on backbone link {self.link_id}")
