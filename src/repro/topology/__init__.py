"""Ground-truth Internet substrate.

This subpackage generates and represents the physical world the paper
measures: metros, colocation facilities and operators, IXPs with switch
fabrics, ASes with footprints and addressing, routers, and the four
interconnection engineering types — plus valley-free policy routing over
it all.  The inference code (``repro.core``) never reads this ground
truth directly; it only sees measurement output and noisy dataset views.
"""

from .addressing import (
    LongestPrefixMatcher,
    PoolExhaustedError,
    Prefix,
    PrefixAllocator,
    int_to_ip,
    ip_to_int,
)
from .asn import ASRole, AutonomousSystem, IPIDMode, PeeringPolicy
from .builder import TopologyBuilder, TopologyConfig, build_topology
from .facility import Facility, FacilityOperator
from .geo import (
    DEFAULT_METROS,
    METRO_GROUPING_MILES,
    GeoLocation,
    Metro,
    MetroCatalogue,
    haversine_km,
    km_to_miles,
    miles_to_km,
    propagation_delay_ms,
)
from .ixp import IXP, MemberPort, Switch, SwitchKind
from .links import BackboneLink, Interconnection, InterconnectionType, Relationship
from .network import Interface, InterfaceKind, Router
from .routing import AsRoute, Forwarder, RouteComputer, RouterHop
from .topology import Adjacency, Topology

__all__ = [
    "Adjacency",
    "ASRole",
    "AsRoute",
    "AutonomousSystem",
    "BackboneLink",
    "build_topology",
    "DEFAULT_METROS",
    "Facility",
    "FacilityOperator",
    "Forwarder",
    "GeoLocation",
    "haversine_km",
    "Interconnection",
    "InterconnectionType",
    "Interface",
    "InterfaceKind",
    "int_to_ip",
    "ip_to_int",
    "IPIDMode",
    "IXP",
    "km_to_miles",
    "LongestPrefixMatcher",
    "MemberPort",
    "Metro",
    "MetroCatalogue",
    "METRO_GROUPING_MILES",
    "miles_to_km",
    "PeeringPolicy",
    "PoolExhaustedError",
    "Prefix",
    "PrefixAllocator",
    "propagation_delay_ms",
    "Relationship",
    "RouteComputer",
    "Router",
    "RouterHop",
    "Switch",
    "SwitchKind",
    "Topology",
    "TopologyBuilder",
    "TopologyConfig",
]
