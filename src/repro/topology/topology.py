"""The ground-truth Internet container.

A :class:`Topology` holds everything the builder generated — metros,
facilities, operators, IXPs, ASes, routers, interfaces, interconnections
— plus derived indexes used by routing, the measurement substrate, the
dataset simulators, and the experiment harnesses.

The inference pipeline (``repro.core``) never touches this object's
ground truth directly: it sees only traceroute output, public-dataset
views, and probe responses.  Experiments use the ground truth to score
inferences, which the paper could only do for small validation subsets
obtained from operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .addressing import LongestPrefixMatcher
from .asn import AutonomousSystem
from .facility import Facility, FacilityOperator
from .geo import GeoLocation, MetroCatalogue
from .ixp import IXP
from .links import BackboneLink, Interconnection, InterconnectionType, Relationship
from .network import Interface, InterfaceKind, Router

__all__ = ["Adjacency", "Topology", "SideType"]


#: Per-side interconnection categories used in Figures 9 and 10:
#: ``"public-local"``, ``"public-remote"``, ``"cross-connect"``,
#: ``"tethering"``.
SideType = str


@dataclass(frozen=True, slots=True)
class Adjacency:
    """One directed router-level adjacency.

    ``ingress_address`` is the interface of ``neighbor_router`` facing
    *us* — the address a traceroute records when the probe crosses into
    that router (replies come from the ingress interface, Section 4.3).
    """

    neighbor_router: int
    ingress_address: int
    egress_address: int
    kind: InterfaceKind
    link_id: int
    is_interconnection: bool


@dataclass(slots=True)
class Topology:
    """Generated ground truth plus derived indexes."""

    seed: int
    metros: MetroCatalogue
    operators: dict[int, FacilityOperator] = field(default_factory=dict)
    facilities: dict[int, Facility] = field(default_factory=dict)
    ases: dict[int, AutonomousSystem] = field(default_factory=dict)
    ixps: dict[int, IXP] = field(default_factory=dict)
    routers: dict[int, Router] = field(default_factory=dict)
    interfaces: dict[int, Interface] = field(default_factory=dict)
    interconnections: dict[int, Interconnection] = field(default_factory=dict)
    backbone_links: dict[int, BackboneLink] = field(default_factory=dict)

    # Derived indexes (populated by :meth:`finalize`).
    _adjacency: dict[int, list[Adjacency]] = field(default_factory=dict)
    _routers_by_asn: dict[int, list[int]] = field(default_factory=dict)
    _links_by_asn: dict[int, list[int]] = field(default_factory=dict)
    _links_by_pair: dict[tuple[int, int], list[int]] = field(default_factory=dict)
    _as_neighbors: dict[int, dict[int, Relationship]] = field(default_factory=dict)
    _announced: LongestPrefixMatcher[int] = field(default_factory=LongestPrefixMatcher)
    _ixp_lan_index: LongestPrefixMatcher[int] = field(default_factory=LongestPrefixMatcher)
    _finalized: bool = False

    # ------------------------------------------------------------------
    # Construction-time registration
    # ------------------------------------------------------------------

    def add_interface(self, interface: Interface) -> None:
        """Register an interface and attach it to its router."""
        if interface.address in self.interfaces:
            raise ValueError(f"duplicate interface address {interface.ip}")
        router = self.routers.get(interface.router_id)
        if router is None:
            raise ValueError(f"unknown router {interface.router_id}")
        self.interfaces[interface.address] = interface
        router.add_interface(interface.address)

    # ------------------------------------------------------------------
    # Finalisation: build derived indexes
    # ------------------------------------------------------------------

    def finalize(self) -> None:
        """Build all derived indexes.  Call once after construction."""
        if self._finalized:
            raise RuntimeError("topology already finalized")
        self._build_router_indexes()
        self._build_adjacency()
        self._build_as_graph()
        self._build_prefix_indexes()
        self._finalized = True

    def _build_router_indexes(self) -> None:
        for router in self.routers.values():
            self._routers_by_asn.setdefault(router.asn, []).append(
                router.router_id
            )

    def _link_interface(self, router_id: int, link_id: int) -> Interface:
        """The private-p2p or backbone interface of ``router_id`` on link
        ``link_id``."""
        router = self.routers[router_id]
        for address in router.interfaces:
            iface = self.interfaces[address]
            if iface.link_id == link_id:
                return iface
        raise ValueError(
            f"router {router_id} has no interface on link {link_id}"
        )

    def _ixp_port_interface(self, router_id: int, ixp_id: int) -> Interface:
        """The (single) peering-LAN port of ``router_id`` at ``ixp_id``.

        One IXP port carries every public peering session of the member
        at that exchange, so the lookup is by IXP, not by link.
        """
        router = self.routers[router_id]
        for address in router.interfaces:
            iface = self.interfaces[address]
            if iface.kind is InterfaceKind.IXP_LAN and iface.ixp_id == ixp_id:
                return iface
        raise ValueError(
            f"router {router_id} has no port at IXP {ixp_id}"
        )

    def _build_adjacency(self) -> None:
        for link in self.backbone_links.values():
            iface_a = self._link_interface(link.router_a, link.link_id)
            iface_b = self._link_interface(link.router_b, link.link_id)
            self._adjacency.setdefault(link.router_a, []).append(
                Adjacency(
                    neighbor_router=link.router_b,
                    ingress_address=iface_b.address,
                    egress_address=iface_a.address,
                    kind=InterfaceKind.BACKBONE,
                    link_id=link.link_id,
                    is_interconnection=False,
                )
            )
            self._adjacency.setdefault(link.router_b, []).append(
                Adjacency(
                    neighbor_router=link.router_a,
                    ingress_address=iface_a.address,
                    egress_address=iface_b.address,
                    kind=InterfaceKind.BACKBONE,
                    link_id=link.link_id,
                    is_interconnection=False,
                )
            )
        for link in self.interconnections.values():
            if link.kind.is_private:
                kind = InterfaceKind.PRIVATE_P2P
                iface_a = self._link_interface(link.router_a, link.link_id)
                iface_b = self._link_interface(link.router_b, link.link_id)
            else:
                kind = InterfaceKind.IXP_LAN
                assert link.ixp_id is not None
                iface_a = self._ixp_port_interface(link.router_a, link.ixp_id)
                iface_b = self._ixp_port_interface(link.router_b, link.ixp_id)
            self._adjacency.setdefault(link.router_a, []).append(
                Adjacency(
                    neighbor_router=link.router_b,
                    ingress_address=iface_b.address,
                    egress_address=iface_a.address,
                    kind=kind,
                    link_id=link.link_id,
                    is_interconnection=True,
                )
            )
            self._adjacency.setdefault(link.router_b, []).append(
                Adjacency(
                    neighbor_router=link.router_a,
                    ingress_address=iface_a.address,
                    egress_address=iface_b.address,
                    kind=kind,
                    link_id=link.link_id,
                    is_interconnection=True,
                )
            )
            self._links_by_asn.setdefault(link.asn_a, []).append(link.link_id)
            self._links_by_asn.setdefault(link.asn_b, []).append(link.link_id)
            pair = (min(link.asn_a, link.asn_b), max(link.asn_a, link.asn_b))
            self._links_by_pair.setdefault(pair, []).append(link.link_id)

    def _build_as_graph(self) -> None:
        for link in self.interconnections.values():
            self._as_neighbors.setdefault(link.asn_a, {})
            self._as_neighbors.setdefault(link.asn_b, {})
            if link.relationship is Relationship.CUSTOMER_PROVIDER:
                # asn_a is the customer of asn_b.
                self._as_neighbors[link.asn_a][link.asn_b] = Relationship.CUSTOMER_PROVIDER
                self._as_neighbors[link.asn_b].setdefault(
                    link.asn_a, Relationship.CUSTOMER_PROVIDER
                )
            else:
                self._as_neighbors[link.asn_a].setdefault(
                    link.asn_b, Relationship.PEER_PEER
                )
                self._as_neighbors[link.asn_b].setdefault(
                    link.asn_a, Relationship.PEER_PEER
                )

    def _build_prefix_indexes(self) -> None:
        for asn, as_record in self.ases.items():
            for prefix in as_record.prefixes:
                self._announced.insert(prefix, asn)
        for ixp in self.ixps.values():
            for lan in ixp.peering_lans:
                self._ixp_lan_index.insert(lan, ixp.ixp_id)

    # ------------------------------------------------------------------
    # Ground-truth queries
    # ------------------------------------------------------------------

    def adjacencies(self, router_id: int) -> list[Adjacency]:
        """Directed adjacencies out of a router."""
        return self._adjacency.get(router_id, [])

    def routers_of(self, asn: int) -> list[int]:
        """Router ids operated by an AS."""
        return self._routers_by_asn.get(asn, [])

    def interconnections_of(self, asn: int) -> list[Interconnection]:
        """All interconnections with ``asn`` as an endpoint."""
        return [
            self.interconnections[lid]
            for lid in self._links_by_asn.get(asn, [])
        ]

    def links_between(self, asn_a: int, asn_b: int) -> list[Interconnection]:
        """All interconnections between two ASes."""
        pair = (min(asn_a, asn_b), max(asn_a, asn_b))
        return [
            self.interconnections[lid]
            for lid in self._links_by_pair.get(pair, [])
        ]

    def as_neighbors(self, asn: int) -> dict[int, Relationship]:
        """Neighbour ASNs and the relationship on the ``asn`` side.

        ``CUSTOMER_PROVIDER`` entries mean *some* transit relationship
        exists with that neighbour; use :meth:`providers_of` /
        :meth:`customers_of` for direction.
        """
        return self._as_neighbors.get(asn, {})

    def providers_of(self, asn: int) -> set[int]:
        """Provider ASNs of ``asn``."""
        return self.ases[asn].transit_provider_asns

    def customers_of(self, asn: int) -> set[int]:
        """Customer ASNs of ``asn``."""
        return {
            other
            for other, record in self.ases.items()
            if asn in record.transit_provider_asns
        }

    def peers_of(self, asn: int) -> set[int]:
        """Settlement-free peer ASNs of ``asn``."""
        providers = self.providers_of(asn)
        customers = self.customers_of(asn)
        return {
            neighbor
            for neighbor in self.as_neighbors(asn)
            if neighbor not in providers and neighbor not in customers
        }

    def interface_at(self, address: int) -> Interface:
        """The interface record at ``address`` (KeyError if unknown)."""
        return self.interfaces[address]

    def router_of_address(self, address: int) -> Router:
        """Ground-truth router owning ``address``."""
        return self.routers[self.interfaces[address].router_id]

    def true_asn_of_address(self, address: int) -> int:
        """The AS *operating* the router that owns ``address``.

        This may differ from the longest-prefix-match answer for shared
        point-to-point subnets and always differs for IXP-LAN addresses.
        """
        return self.router_of_address(address).asn

    def true_facility_of_address(self, address: int) -> int:
        """Ground-truth facility of the router owning ``address``."""
        return self.router_of_address(address).facility_id

    def announced_origin(self, address: int) -> int | None:
        """Longest-prefix-match origin ASN over announced prefixes."""
        return self._announced.lookup(address)

    def announced_prefixes(self) -> LongestPrefixMatcher[int]:
        """The announcement index itself (read-only by convention)."""
        return self._announced

    def ixp_of_address(self, address: int) -> int | None:
        """IXP id whose peering LAN covers ``address``, if any."""
        return self._ixp_lan_index.lookup(address)

    def router_location(self, router_id: int) -> GeoLocation:
        """Street-level location of the router (its facility's)."""
        return self.facilities[self.routers[router_id].facility_id].location

    def facility_metro(self, facility_id: int) -> str:
        """Metro of a facility."""
        return self.facilities[facility_id].metro

    def side_type(self, link: Interconnection, asn: int) -> SideType:
        """Figure 9/10 category of ``asn``'s side of ``link``.

        Public peering is ``"public-local"`` or ``"public-remote"``
        depending on whether that member's IXP port goes through a
        reseller; private interconnects are ``"cross-connect"`` or
        ``"tethering"``.
        """
        if not link.involves(asn):
            raise ValueError(f"AS{asn} not on link {link.link_id}")
        if link.kind is InterconnectionType.PRIVATE_CROSS_CONNECT:
            return "cross-connect"
        if link.kind is InterconnectionType.TETHERING:
            return "tethering"
        assert link.ixp_id is not None
        if self.ixps[link.ixp_id].is_remote_member(asn):
            return "public-remote"
        return "public-local"

    def facilities_in_metro(self, metro: str) -> list[Facility]:
        """All facilities whose canonical metro is ``metro``."""
        return [f for f in self.facilities.values() if f.metro == metro]

    def campus_facilities(self, facility_id: int) -> set[int]:
        """Facilities cross-connectable from ``facility_id``.

        The facility itself, plus same-operator facilities in the same
        metro when the operator runs a connected campus there.
        """
        facility = self.facilities[facility_id]
        result = {facility_id}
        operator = self.operators[facility.operator_id]
        if operator.connects_campus_in(facility.metro):
            for other_id in operator.facility_ids:
                if self.facilities[other_id].metro == facility.metro:
                    result.add(other_id)
        return result

    def summary(self) -> dict[str, int]:
        """Headline sizes, for reporting and sanity checks."""
        return {
            "metros": len(self.metros),
            "operators": len(self.operators),
            "facilities": len(self.facilities),
            "ases": len(self.ases),
            "ixps": len(self.ixps),
            "routers": len(self.routers),
            "interfaces": len(self.interfaces),
            "interconnections": len(self.interconnections),
            "backbone_links": len(self.backbone_links),
        }
