"""Counters and monotonic per-stage timers over a pluggable sink.

One :class:`Instrumentation` instance accompanies one pipeline run.  It
offers three primitives to instrumented code:

* ``count(name, n)`` — bump a named counter;
* ``stage(name)`` — a context manager accumulating wall-clock time
  (``time.perf_counter_ns``, monotonic) under a stage name, re-entrant
  across iterations so repeated stages aggregate;
* ``emit(name, **payload)`` — forward a structured event to the sink.

``snapshot()`` freezes the counters and timings into a
:class:`MetricsSnapshot`, which the CFS loop attaches to its result
(``CfsResult.metrics``) and the exporter/CLI render.

Every quantity is carried as an integer — counters, call counts, and
stage time in **nanoseconds** — so snapshot merging is exact integer
addition: associative, commutative, and independent of the order in
which parallel shards hand their snapshots back.  ``stage_seconds``
stays available as a derived float view for display and export.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from .events import EVENT_NAMES, ObsEvent, UnregisteredEventError
from .sinks import NullSink, ObsSink

__all__ = ["Instrumentation", "MetricsSnapshot"]


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """Frozen view of one run's counters and stage timings."""

    #: Monotonic counters, e.g. ``{"cfs.traces_parsed": 1024}``.
    counters: dict[str, int] = field(default_factory=dict)
    #: Accumulated wall-clock nanoseconds per stage (integers, so
    #: merging snapshots is exact).
    stage_ns: dict[str, int] = field(default_factory=dict)
    #: Times each stage was entered.
    stage_calls: dict[str, int] = field(default_factory=dict)

    @property
    def stage_seconds(self) -> dict[str, float]:
        """Stage times as float seconds (derived display view)."""
        return {name: ns / 1e9 for name, ns in self.stage_ns.items()}

    def counter(self, name: str, default: int = 0) -> int:
        """One counter's value (``default`` if never bumped)."""
        return self.counters.get(name, default)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready rendering (sorted keys, plain scalars)."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "stages": {
                name: {
                    "seconds": self.stage_ns[name] / 1e9,
                    "calls": self.stage_calls.get(name, 0),
                }
                for name in sorted(self.stage_ns)
            },
        }

    @classmethod
    def merge_all(cls, snapshots: Iterable["MetricsSnapshot"]) -> "MetricsSnapshot":
        """Sum many snapshots into one.

        Pure integer addition per key, so the result is identical for
        every ordering and grouping of ``snapshots`` — the property the
        parallel executor's shard merge relies on (and that
        ``tests/exec`` pins down).
        """
        counters: dict[str, int] = {}
        stage_ns: dict[str, int] = {}
        stage_calls: dict[str, int] = {}
        for snapshot in snapshots:
            for name, value in snapshot.counters.items():
                counters[name] = counters.get(name, 0) + value
            for name, value in snapshot.stage_ns.items():
                stage_ns[name] = stage_ns.get(name, 0) + value
            for name, value in snapshot.stage_calls.items():
                stage_calls[name] = stage_calls.get(name, 0) + value
        return cls(
            counters=counters, stage_ns=stage_ns, stage_calls=stage_calls
        )


class Instrumentation:
    """Per-run counters, stage timers, and event emission."""

    def __init__(
        self, sink: ObsSink | None = None, *, strict: bool = False
    ) -> None:
        # `sink or NullSink()` would misfire: an *empty* MemorySink is
        # falsy through its __len__.
        self.sink: ObsSink = sink if sink is not None else NullSink()
        self._silent = isinstance(self.sink, NullSink)
        #: Strict mode is the runtime twin of reprolint rule R004: an
        #: ``emit()`` with a name missing from the EVENT_NAMES registry
        #: raises instead of silently minting a new namespace entry.
        self.strict = strict
        self._counters: dict[str, int] = {}
        self._stage_ns: dict[str, int] = {}
        self._stage_calls: dict[str, int] = {}
        self._stage_stack: list[str] = []

    # ------------------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + n

    def emit(self, name: str, /, **payload: Any) -> None:
        """Send one structured event to the sink.

        In strict mode an unregistered name raises
        :class:`~repro.obs.events.UnregisteredEventError` even when the
        sink would have discarded the event.
        """
        if self.strict and name not in EVENT_NAMES:
            raise UnregisteredEventError(
                f"event name {name!r} is not declared in EVENT_NAMES "
                "(repro/obs/events.py)"
            )
        if self._silent:
            return
        self.sink.emit(
            ObsEvent(name=name, payload=payload, stage=self.current_stage)
        )

    @property
    def current_stage(self) -> str | None:
        """Innermost active stage name, if any."""
        return self._stage_stack[-1] if self._stage_stack else None

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Accumulate monotonic wall-clock time under ``name``."""
        self._stage_stack.append(name)
        self._stage_calls[name] = self._stage_calls.get(name, 0) + 1
        started = time.perf_counter_ns()
        try:
            yield
        finally:
            elapsed = time.perf_counter_ns() - started
            self._stage_ns[name] = self._stage_ns.get(name, 0) + elapsed
            self._stage_stack.pop()
            self.emit("stage", stage=name, seconds=elapsed / 1e9)

    # ------------------------------------------------------------------

    def counter(self, name: str, default: int = 0) -> int:
        """Current value of counter ``name``."""
        return self._counters.get(name, default)

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Fold a worker's snapshot into this instance's live totals.

        The parallel executor's parent-side merge: shards accumulate
        into private :class:`Instrumentation` instances, and the parent
        absorbs their snapshots in shard-index order.  All additions
        are integer-exact, so the totals equal the serial run's.
        """
        for name, value in snapshot.counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in snapshot.stage_ns.items():
            self._stage_ns[name] = self._stage_ns.get(name, 0) + value
        for name, value in snapshot.stage_calls.items():
            self._stage_calls[name] = self._stage_calls.get(name, 0) + value

    def snapshot(self) -> MetricsSnapshot:
        """Freeze counters and timings into a :class:`MetricsSnapshot`."""
        return MetricsSnapshot(
            counters=dict(self._counters),
            stage_ns=dict(self._stage_ns),
            stage_calls=dict(self._stage_calls),
        )
