"""Counters and monotonic per-stage timers over a pluggable sink.

One :class:`Instrumentation` instance accompanies one pipeline run.  It
offers three primitives to instrumented code:

* ``count(name, n)`` — bump a named counter;
* ``stage(name)`` — a context manager accumulating wall-clock time
  (``time.perf_counter``, monotonic) under a stage name, re-entrant
  across iterations so repeated stages aggregate;
* ``emit(name, **payload)`` — forward a structured event to the sink.

``snapshot()`` freezes the counters and timings into a
:class:`MetricsSnapshot`, which the CFS loop attaches to its result
(``CfsResult.metrics``) and the exporter/CLI render.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from .events import EVENT_NAMES, ObsEvent, UnregisteredEventError
from .sinks import NullSink, ObsSink

__all__ = ["Instrumentation", "MetricsSnapshot"]


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """Frozen view of one run's counters and stage timings."""

    #: Monotonic counters, e.g. ``{"cfs.traces_parsed": 1024}``.
    counters: dict[str, int] = field(default_factory=dict)
    #: Accumulated wall-clock seconds per stage.
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: Times each stage was entered.
    stage_calls: dict[str, int] = field(default_factory=dict)

    def counter(self, name: str, default: int = 0) -> int:
        """One counter's value (``default`` if never bumped)."""
        return self.counters.get(name, default)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready rendering (sorted keys, plain scalars)."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "stages": {
                name: {
                    "seconds": self.stage_seconds[name],
                    "calls": self.stage_calls.get(name, 0),
                }
                for name in sorted(self.stage_seconds)
            },
        }


class Instrumentation:
    """Per-run counters, stage timers, and event emission."""

    def __init__(
        self, sink: ObsSink | None = None, *, strict: bool = False
    ) -> None:
        # `sink or NullSink()` would misfire: an *empty* MemorySink is
        # falsy through its __len__.
        self.sink: ObsSink = sink if sink is not None else NullSink()
        self._silent = isinstance(self.sink, NullSink)
        #: Strict mode is the runtime twin of reprolint rule R004: an
        #: ``emit()`` with a name missing from the EVENT_NAMES registry
        #: raises instead of silently minting a new namespace entry.
        self.strict = strict
        self._counters: dict[str, int] = {}
        self._stage_seconds: dict[str, float] = {}
        self._stage_calls: dict[str, int] = {}
        self._stage_stack: list[str] = []

    # ------------------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + n

    def emit(self, name: str, /, **payload: Any) -> None:
        """Send one structured event to the sink.

        In strict mode an unregistered name raises
        :class:`~repro.obs.events.UnregisteredEventError` even when the
        sink would have discarded the event.
        """
        if self.strict and name not in EVENT_NAMES:
            raise UnregisteredEventError(
                f"event name {name!r} is not declared in EVENT_NAMES "
                "(repro/obs/events.py)"
            )
        if self._silent:
            return
        self.sink.emit(
            ObsEvent(name=name, payload=payload, stage=self.current_stage)
        )

    @property
    def current_stage(self) -> str | None:
        """Innermost active stage name, if any."""
        return self._stage_stack[-1] if self._stage_stack else None

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Accumulate monotonic wall-clock time under ``name``."""
        self._stage_stack.append(name)
        self._stage_calls[name] = self._stage_calls.get(name, 0) + 1
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._stage_seconds[name] = (
                self._stage_seconds.get(name, 0.0) + elapsed
            )
            self._stage_stack.pop()
            self.emit("stage", stage=name, seconds=elapsed)

    # ------------------------------------------------------------------

    def counter(self, name: str, default: int = 0) -> int:
        """Current value of counter ``name``."""
        return self._counters.get(name, default)

    def snapshot(self) -> MetricsSnapshot:
        """Freeze counters and timings into a :class:`MetricsSnapshot`."""
        return MetricsSnapshot(
            counters=dict(self._counters),
            stage_seconds=dict(self._stage_seconds),
            stage_calls=dict(self._stage_calls),
        )
