"""Pluggable event sinks for the observability layer.

A sink is anything with an ``emit(event)`` method.  Three are provided:

* :class:`NullSink` — discards everything; the default, so production
  code pays only a counter increment per event;
* :class:`LoggingSink` — renders events onto a standard :mod:`logging`
  logger (one line per event, payload as ``key=value`` pairs);
* :class:`MemorySink` — captures events in order for tests and
  interactive inspection.

Sinks must never raise out of ``emit``; an observability failure must
not take the inference engine down with it.
"""

from __future__ import annotations

import logging
from typing import Protocol, runtime_checkable

from .events import ObsEvent

__all__ = ["ObsSink", "NullSink", "LoggingSink", "MemorySink"]


@runtime_checkable
class ObsSink(Protocol):
    """Structural interface every sink implements."""

    def emit(self, event: ObsEvent) -> None:
        """Consume one event (must not raise)."""


class NullSink:
    """Discards every event (the zero-overhead default)."""

    def emit(self, event: ObsEvent) -> None:
        """Drop the event."""


class LoggingSink:
    """Renders events onto a :mod:`logging` logger.

    Args:
        logger: target logger (default ``logging.getLogger("repro.obs")``).
        level: log level for every rendered event.
    """

    def __init__(
        self, logger: logging.Logger | None = None, level: int = logging.INFO
    ) -> None:
        self._logger = logger or logging.getLogger("repro.obs")
        self._level = level

    def emit(self, event: ObsEvent) -> None:
        """Render ``event`` as one log line."""
        if not self._logger.isEnabledFor(self._level):
            return
        pairs = " ".join(f"{key}={value}" for key, value in event.payload.items())
        stage = f" [{event.stage}]" if event.stage else ""
        self._logger.log(self._level, "%s%s %s", event.name, stage, pairs)


class MemorySink:
    """Captures events in arrival order (for tests and notebooks)."""

    def __init__(self) -> None:
        self.events: list[ObsEvent] = []

    def emit(self, event: ObsEvent) -> None:
        """Store the event."""
        self.events.append(event)

    def by_name(self, name: str) -> list[ObsEvent]:
        """All captured events called ``name``."""
        return [event for event in self.events if event.name == name]

    def clear(self) -> None:
        """Forget every captured event."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)
