"""Structured observability events.

Every instrumented component emits :class:`ObsEvent` records through a
sink (:mod:`repro.obs.sinks`).  Events are cheap, flat records — a name,
an optional stage, and a payload of JSON-serialisable scalars — so any
sink (logging, in-memory capture, a future exporter) can consume them
without knowing which subsystem produced them.

Naming convention: ``<subsystem>.<what>`` in past tense for facts
(``cfs.iteration``, ``alias.refresh``) and ``stage`` for timer closures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["EVENT_NAMES", "ObsEvent", "UnregisteredEventError"]


#: The closed event namespace: every name an instrumented component may
#: ``emit()``, with a one-line description of when it fires.  Reprolint
#: rule R004 statically requires every ``emit("<name>", ...)`` literal
#: in the tree to appear here (and flags entries nothing emits);
#: ``Instrumentation(strict=True)`` is the runtime twin, raising
#: :class:`UnregisteredEventError` for unknown names.
EVENT_NAMES: dict[str, str] = {
    "stage": "a timed stage closed (payload: stage, seconds)",
    "cfs.iteration": "one CFS iteration finished (interfaces, applied)",
    "cfs.alias_refresh": "alias resolution re-ran inside the CFS loop",
    "midar.resolve": "one MIDAR-style alias resolution round completed",
    "hitlist.miss": "a target AS had no responsive hitlist addresses",
    "campaign.initial": "the initial traceroute campaign completed",
    "campaign.budget": "final probe-budget accounting after a campaign",
    "campaign.vp_quarantined": "a vantage point's circuit breaker opened",
    "fault.vp_outage": "fault injection took a vantage point down",
    "fault.lg_timeout": "fault injection timed out a looking-glass query",
    "fault.lg_rate_limit": "fault injection rate-limited a looking glass",
    "exec.shard.retry": "the supervisor resubmitted a crashed/hung shard",
    "exec.shard.quarantine": "a poisoned shard was demoted to serial",
    "exec.pool.rebuild": "the supervisor tore down and rebuilt the pool",
    "checkpoint.write": "one pipeline stage was durably checkpointed",
    "checkpoint.load": "one checkpointed stage passed verification and loaded",
    "checkpoint.corrupt": "a checkpoint failed verification; recomputing",
    "ingest.epoch.begin": "the map service started executing one epoch's probes",
    "ingest.epoch.done": "one epoch's traces were folded into the live map",
    "ingest.stream.end": "the simulated traceroute stream was exhausted",
    "ingest.resume": "stream state was restored from a mid-stream checkpoint",
    "ingest.replan": "a churned epoch re-planned its campaign against the moved world",
    "churn.event": "one temporal churn event took effect on the ground truth",
    "disrupt.alarm": "the disruption detector localised a facility-level loss",
    "disrupt.clear": "a previously alarmed facility recovered and cleared",
    "serve.health.assessment": "the detector's change-vs-fault verdict was recorded",
    "serve.snapshot.publish": "a versioned map snapshot was durably published",
    "serve.snapshot.swap": "the read path switched to a new snapshot",
    "serve.query": "the query engine answered one lookup",
    "serve.health.transition": "the service health state machine changed state",
    "serve.epoch.retry": "one ingest epoch failed and was resubmitted",
    "serve.epoch.quarantine": "a poisoned epoch was skipped after its retry budget",
    "serve.snapshot.rollback": "a corrupt publish was dropped; last good snapshot kept",
    "sanitizer.violation": "the runtime sanitizer tripped a determinism invariant",
}


class UnregisteredEventError(ValueError):
    """Raised in strict mode for an ``emit()`` name missing from
    :data:`EVENT_NAMES`."""


@dataclass(frozen=True, slots=True)
class ObsEvent:
    """One structured observation emitted by an instrumented component."""

    #: Dotted event name, e.g. ``"cfs.iteration"`` or ``"stage"``.
    name: str
    #: Flat payload of scalars; sinks must not mutate it.
    payload: Mapping[str, Any] = field(default_factory=dict)
    #: The pipeline stage active when the event fired (``None`` outside
    #: any timed stage).
    stage: str | None = None

    def get(self, key: str, default: Any = None) -> Any:
        """Payload lookup shorthand."""
        return self.payload.get(key, default)
