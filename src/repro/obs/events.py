"""Structured observability events.

Every instrumented component emits :class:`ObsEvent` records through a
sink (:mod:`repro.obs.sinks`).  Events are cheap, flat records — a name,
an optional stage, and a payload of JSON-serialisable scalars — so any
sink (logging, in-memory capture, a future exporter) can consume them
without knowing which subsystem produced them.

Naming convention: ``<subsystem>.<what>`` in past tense for facts
(``cfs.iteration``, ``alias.refresh``) and ``stage`` for timer closures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["ObsEvent"]


@dataclass(frozen=True, slots=True)
class ObsEvent:
    """One structured observation emitted by an instrumented component."""

    #: Dotted event name, e.g. ``"cfs.iteration"`` or ``"stage"``.
    name: str
    #: Flat payload of scalars; sinks must not mutate it.
    payload: Mapping[str, Any] = field(default_factory=dict)
    #: The pipeline stage active when the event fired (``None`` outside
    #: any timed stage).
    stage: str | None = None

    def get(self, key: str, default: Any = None) -> Any:
        """Payload lookup shorthand."""
        return self.payload.get(key, default)
