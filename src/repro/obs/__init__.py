"""Observability: structured events, counters, and per-stage timers.

The pipeline's instrumented components (the CFS loop, the Step-1
classifier, the MIDAR front-end, the campaign driver) accept an optional
:class:`Instrumentation`.  It aggregates named counters and monotonic
stage timings, and forwards structured :class:`ObsEvent` records to a
pluggable sink — :class:`NullSink` (default), :class:`LoggingSink`, or
:class:`MemorySink` for tests.  ``Instrumentation.snapshot()`` produces
the :class:`MetricsSnapshot` carried on ``CfsResult.metrics`` and
rendered by ``python -m repro run --metrics``.
"""

from .events import EVENT_NAMES, ObsEvent, UnregisteredEventError
from .instrument import Instrumentation, MetricsSnapshot
from .sinks import LoggingSink, MemorySink, NullSink, ObsSink

__all__ = [
    "EVENT_NAMES",
    "Instrumentation",
    "LoggingSink",
    "MemorySink",
    "MetricsSnapshot",
    "NullSink",
    "ObsEvent",
    "ObsSink",
    "UnregisteredEventError",
]
