"""Baselines the paper compares against: DNS and IP geolocation."""

from .drop import DnsGeolocationResult, DropGeolocator
from .ipgeo import IpGeoBaseline, IpGeoResult

__all__ = [
    "DnsGeolocationResult",
    "DropGeolocator",
    "IpGeoBaseline",
    "IpGeoResult",
]
