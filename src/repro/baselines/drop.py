"""DRoP-style DNS geolocation baseline (Huffaker et al.).

Section 5 contrasts CFS against hostname-based geolocation: DRoP parses
geographically meaningful tokens — airport codes, city names, CLLI
codes — out of reverse-DNS names.  In the paper, 29% of the peering
interfaces had no DNS record at all, 55% of the rest encoded no
location, and the final yield (32% of interfaces, city granularity at
best) was below what CFS achieves within its first five iterations.

The parser here understands the operator naming schemes the DNS
substrate generates, including facility codes — but a facility code is
only *decodable* when the operator's convention is known, which the
paper could confirm for just seven operators; the baseline therefore
reports city-level answers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets.dnsnames import DnsZone, metro_airport_code, metro_clli_code
from ..topology.geo import MetroCatalogue

__all__ = ["DnsGeolocationResult", "DropGeolocator"]


@dataclass(frozen=True, slots=True)
class DnsGeolocationResult:
    """Outcome of hostname parsing for one address."""

    address: int
    hostname: str | None
    metro: str | None
    matched_token: str | None

    @property
    def located(self) -> bool:
        """True when a location token was decoded from the hostname."""
        return self.metro is not None


class DropGeolocator:
    """Token tables + matcher over generated hostnames."""

    def __init__(self, catalogue: MetroCatalogue, dns: DnsZone) -> None:
        self._dns = dns
        # Token tables: airport codes, CLLI codes, and city-name tokens.
        self._token_to_metro: dict[str, str] = {}
        for metro in catalogue:
            self._token_to_metro[metro_airport_code(metro.name)] = metro.name
            self._token_to_metro[metro_clli_code(metro.name)] = metro.name
            city_token = "".join(ch for ch in metro.name.lower() if ch.isalpha())
            if city_token:
                self._token_to_metro[city_token] = metro.name

    def locate(self, address: int) -> DnsGeolocationResult:
        """Parse the PTR record of ``address`` for location tokens."""
        hostname = self._dns.ptr(address)
        if hostname is None:
            return DnsGeolocationResult(address, None, None, None)
        for raw_label in hostname.split("."):
            for label in raw_label.split("-"):
                metro = self._token_to_metro.get(label)
                if metro is not None:
                    return DnsGeolocationResult(address, hostname, metro, label)
        return DnsGeolocationResult(address, hostname, None, None)

    def locate_all(self, addresses: list[int]) -> dict[int, DnsGeolocationResult]:
        """Batch interface geolocation."""
        return {address: self.locate(address) for address in addresses}

    def coverage_report(self, addresses: list[int]) -> dict[str, int]:
        """The paper's Section-5 breakdown: no record / no location
        token / located."""
        results = self.locate_all(addresses)
        no_record = sum(1 for r in results.values() if r.hostname is None)
        located = sum(1 for r in results.values() if r.located)
        with_record = len(results) - no_record
        return {
            "total": len(results),
            "no_record": no_record,
            "record_without_location": with_record - located,
            "located": located,
        }
