"""IP-geolocation baseline: facility guessing from a geolocation DB.

Section 7 dismisses commercial IP geolocation for this problem — it is
reliable at the country level at best, and content-provider space all
maps to headquarters.  The baseline nevertheless tries its best: take
the database's metro answer for the interface address and, if the
owning AS is present at exactly one facility in that metro (per the
facility map), report that facility; otherwise report the metro only.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.facility_db import FacilityDatabase
from ..datasets.geolocation import GeoDatabase

__all__ = ["IpGeoResult", "IpGeoBaseline"]


@dataclass(frozen=True, slots=True)
class IpGeoResult:
    """Outcome of database-driven facility guessing for one address."""

    address: int
    country: str | None
    metro: str | None
    facility: int | None


class IpGeoBaseline:
    """Geolocation-database facility heuristic."""

    def __init__(self, geodb: GeoDatabase, facility_db: FacilityDatabase) -> None:
        self._geodb = geodb
        self._facility_db = facility_db

    def locate(self, address: int, owner_asn: int | None = None) -> IpGeoResult:
        """Best-effort location for ``address``.

        ``owner_asn`` (when known from IP-to-ASN mapping) narrows the
        metro answer to a facility if the AS has exactly one known
        facility there.
        """
        record = self._geodb.lookup(address)
        if record is None:
            return IpGeoResult(address, None, None, None)
        facility: int | None = None
        if owner_asn is not None:
            in_metro = [
                facility_id
                for facility_id in self._facility_db.facilities_of(owner_asn)
                if self._facility_db.metro_of(facility_id) == record.metro
            ]
            if len(in_metro) == 1:
                facility = in_metro[0]
        return IpGeoResult(address, record.country, record.metro, facility)

    def locate_all(
        self, addresses: dict[int, int | None]
    ) -> dict[int, IpGeoResult]:
        """Batch lookup; ``addresses`` maps address -> owner ASN."""
        return {
            address: self.locate(address, owner)
            for address, owner in addresses.items()
        }
